package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Row wire format (little endian), version 1:
//
//	u8  format version
//	u8  flags (bit 0: Dirty)
//	u16 value count
//	per value:
//	    u16 source length, source bytes
//	    i64 wall, u32 logical, u32 node
//	    u8  deleted
//	    u32 value length, value bytes
//	u16 monitor count, u64 per monitor id
//
// Version 2 carries the causal replication state and differs in two places:
// after the flags it inserts
//
//	u32 obs (evicted-sibling witness)
//	u16 clock entry count
//	per entry: u32 node, u64 base, u16 dot count, u64 per isolated dot
//
// and each value gains, after the deleted byte,
//
//	u32 dot node, u64 dot counter
//
// Rows without causal metadata (no clock, no dots, zero obs) still encode
// as version 1, so pre-DVV decoders keep accepting everything a mixed-era
// store hands them and the legacy hot path keeps its allocation budget.
// Decoders accept both versions.
//
// The codec is hand-rolled rather than gob/json: rows are encoded on every
// store write and decoded on every read, so the hot path must not allocate
// reflection state.

const (
	rowFormatV1 = 1
	rowFormatV2 = 2
)

// hasCausal reports whether the row needs the version-2 encoding.
func (r *Row) hasCausal() bool {
	if len(r.Clock) > 0 || r.Obs != 0 {
		return true
	}
	for i := range r.Values {
		if !r.Values[i].Dot.IsZero() {
			return true
		}
	}
	return false
}

// ErrCorruptRow is returned when a row blob fails to decode.
var ErrCorruptRow = errors.New("kv: corrupt row encoding")

// EncodedRowSize returns the exact byte length EncodeRow will produce,
// allowing callers to size buffers without a second pass.
func EncodedRowSize(r *Row) int {
	causal := r.hasCausal()
	n := 1 + 1 + 2
	if causal {
		n += 4 + EncodedDVVSize(r.Clock)
	}
	for _, v := range r.Values {
		n += 2 + len(v.Source) + 8 + 4 + 4 + 1 + 4 + len(v.Value)
		if causal {
			n += 4 + 8
		}
	}
	n += 2 + 8*len(r.Monitors)
	return n
}

// AppendRow appends the encoding of r to dst and returns the extended slice.
func AppendRow(dst []byte, r *Row) []byte {
	causal := r.hasCausal()
	if causal {
		dst = append(dst, rowFormatV2)
	} else {
		dst = append(dst, rowFormatV1)
	}
	var flags byte
	if r.Dirty {
		flags |= 1
	}
	dst = append(dst, flags)
	if causal {
		dst = binary.LittleEndian.AppendUint32(dst, r.Obs)
		dst = AppendDVV(dst, r.Clock)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Values)))
	for _, v := range r.Values {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Source)))
		dst = append(dst, v.Source...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.TS.Wall))
		dst = binary.LittleEndian.AppendUint32(dst, v.TS.Logical)
		dst = binary.LittleEndian.AppendUint32(dst, v.TS.Node)
		if v.Deleted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		if causal {
			dst = binary.LittleEndian.AppendUint32(dst, v.Dot.Node)
			dst = binary.LittleEndian.AppendUint64(dst, v.Dot.Counter)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Value)))
		dst = append(dst, v.Value...)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Monitors)))
	for _, m := range r.Monitors {
		dst = binary.LittleEndian.AppendUint64(dst, m)
	}
	return dst
}

// EncodeRow returns the binary encoding of r in a freshly allocated buffer.
func EncodeRow(r *Row) []byte {
	return AppendRow(make([]byte, 0, EncodedRowSize(r)), r)
}

// DecodeRow parses a row blob produced by EncodeRow. The returned row does
// not alias b.
func DecodeRow(b []byte) (*Row, error) {
	r := &Row{}
	if err := decodeRow(r, b, true); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeRowInto parses a row blob into r, reusing r's Values and Monitors
// capacity so steady-state decoding of a stable row allocates nothing.
//
// Ownership rules (the zero-copy contract): every Value slice ALIASES b, so
// r is only valid while b is, and writing into a decoded value corrupts b.
// Source strings are reused from r's previous entries when unchanged and
// freshly allocated otherwise. Use DecodeRow wherever the row outlives the
// input buffer (pooled transport frames, memstore blobs handed to user
// code). On error r's contents are unspecified.
func DecodeRowInto(r *Row, b []byte) error {
	return decodeRow(r, b, false)
}

func decodeRow(r *Row, b []byte, copyBytes bool) error {
	d := rowDecoder{b: b}
	ver, err := d.u8()
	if err != nil {
		return err
	}
	if ver != rowFormatV1 && ver != rowFormatV2 {
		return fmt.Errorf("%w: unknown version %d", ErrCorruptRow, ver)
	}
	causal := ver == rowFormatV2
	flags, err := d.u8()
	if err != nil {
		return err
	}
	r.Obs = 0
	r.Clock = r.Clock[:0]
	if causal {
		if r.Obs, err = d.u32(); err != nil {
			return err
		}
		if err = d.clockInto(&r.Clock); err != nil {
			return err
		}
	}
	nv, err := d.u16()
	if err != nil {
		return err
	}
	r.Dirty = flags&1 != 0
	prev := r.Values
	if cap(r.Values) < int(nv) {
		r.Values = make([]Versioned, 0, nv)
	} else {
		r.Values = r.Values[:0]
	}
	for i := 0; i < int(nv); i++ {
		var v Versioned
		src, err := d.bytes16()
		if err != nil {
			return err
		}
		// Reuse the previous decode's Source string when it is unchanged;
		// the comparison itself does not allocate.
		if i < len(prev) && prev[i].Source == string(src) {
			v.Source = prev[i].Source
		} else {
			v.Source = string(src)
		}
		wall, err := d.u64()
		if err != nil {
			return err
		}
		v.TS.Wall = int64(wall)
		if v.TS.Logical, err = d.u32(); err != nil {
			return err
		}
		if v.TS.Node, err = d.u32(); err != nil {
			return err
		}
		del, err := d.u8()
		if err != nil {
			return err
		}
		v.Deleted = del != 0
		if causal {
			if v.Dot.Node, err = d.u32(); err != nil {
				return err
			}
			if v.Dot.Counter, err = d.u64(); err != nil {
				return err
			}
		}
		val, err := d.bytes32()
		if err != nil {
			return err
		}
		if copyBytes {
			v.Value = append([]byte(nil), val...)
		} else {
			v.Value = val
		}
		r.Values = append(r.Values, v)
	}
	nm, err := d.u16()
	if err != nil {
		return err
	}
	if cap(r.Monitors) < int(nm) {
		if nm > 0 {
			r.Monitors = make([]uint64, 0, nm)
		}
	} else {
		r.Monitors = r.Monitors[:0]
	}
	for i := 0; i < int(nm); i++ {
		m, err := d.u64()
		if err != nil {
			return err
		}
		r.Monitors = append(r.Monitors, m)
	}
	if len(d.b) != d.off {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptRow, len(d.b)-d.off)
	}
	return nil
}

// DecodeRowClock parses only the causal clock out of a row blob. The
// coordinator's blind-write context fill needs nothing else, and the clock
// sits ahead of the value list, so this costs a few header bytes instead of
// a full row decode. Version-1 blobs yield a nil clock.
func DecodeRowClock(b []byte) (DVV, error) {
	d := rowDecoder{b: b}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != rowFormatV1 && ver != rowFormatV2 {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorruptRow, ver)
	}
	if ver != rowFormatV2 {
		return nil, nil
	}
	if _, err := d.u8(); err != nil { // flags
		return nil, err
	}
	if _, err := d.u32(); err != nil { // obs
		return nil, err
	}
	var c DVV
	if err := d.clockInto(&c); err != nil {
		return nil, err
	}
	return c, nil
}

type rowDecoder struct {
	b   []byte
	off int
}

// clockInto decodes a DVV into c, reusing entry capacity (the warmed
// zero-copy path); isolated-dot slices are reused per entry when present.
func (d *rowDecoder) clockInto(c *DVV) error {
	ne, err := d.u16()
	if err != nil {
		return err
	}
	prev := (*c)[:cap(*c)]
	if cap(*c) < int(ne) {
		*c = make(DVV, 0, ne)
		prev = nil
	} else {
		*c = (*c)[:0]
	}
	for i := 0; i < int(ne); i++ {
		var e DVVEntry
		if i < len(prev) {
			e.Dots = prev[i].Dots[:0]
		}
		if e.Node, err = d.u32(); err != nil {
			return err
		}
		if e.Base, err = d.u64(); err != nil {
			return err
		}
		nd, err := d.u16()
		if err != nil {
			return err
		}
		if cap(e.Dots) < int(nd) {
			e.Dots = make([]uint64, 0, nd)
		}
		for j := 0; j < int(nd); j++ {
			v, err := d.u64()
			if err != nil {
				return err
			}
			e.Dots = append(e.Dots, v)
		}
		if nd == 0 && cap(e.Dots) == 0 {
			e.Dots = nil
		}
		*c = append(*c, e)
	}
	return nil
}

func (d *rowDecoder) need(n int) error {
	if len(d.b)-d.off < n {
		return fmt.Errorf("%w: truncated at offset %d (need %d of %d)", ErrCorruptRow, d.off, n, len(d.b))
	}
	return nil
}

func (d *rowDecoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *rowDecoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v, nil
}

func (d *rowDecoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *rowDecoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *rowDecoder) bytes16() ([]byte, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}

func (d *rowDecoder) bytes32() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}
