package kv

import (
	"math/rand"
	"testing"
)

func TestDVVFoldCompacts(t *testing.T) {
	var c DVV
	c.Fold(Dot{Node: 1, Counter: 1})
	c.Fold(Dot{Node: 1, Counter: 2})
	c.Fold(Dot{Node: 1, Counter: 3})
	if len(c) != 1 || c[0].Base != 3 || len(c[0].Dots) != 0 {
		t.Fatalf("contiguous folds = %v", c)
	}
	// An isolated counter stays a dot until the gap fills.
	c.Fold(Dot{Node: 1, Counter: 6})
	if c[0].Base != 3 || len(c[0].Dots) != 1 || c[0].Dots[0] != 6 {
		t.Fatalf("gapped fold = %v", c)
	}
	c.Fold(Dot{Node: 1, Counter: 4})
	c.Fold(Dot{Node: 1, Counter: 5})
	if c[0].Base != 6 || len(c[0].Dots) != 0 {
		t.Fatalf("gap fill did not absorb: %v", c)
	}
}

// TestDVVGapNotCovered is the gap problem a max-counter version vector gets
// wrong: seeing dot 6 must not imply dot 4 was seen.
func TestDVVGapNotCovered(t *testing.T) {
	var c DVV
	c.Fold(Dot{Node: 7, Counter: 2})
	c.Fold(Dot{Node: 7, Counter: 6})
	if !c.Covers(Dot{Node: 7, Counter: 2}) || !c.Covers(Dot{Node: 7, Counter: 6}) {
		t.Fatal("folded dots must be covered")
	}
	for _, missing := range []uint64{3, 4, 5, 7} {
		if c.Covers(Dot{Node: 7, Counter: missing}) {
			t.Fatalf("counter %d was never seen but Covers says yes", missing)
		}
	}
	if c.Covers(Dot{Node: 8, Counter: 1}) {
		t.Fatal("unknown node covered")
	}
}

func TestDVVExtendBase(t *testing.T) {
	var c DVV
	c.ExtendBase(3, 0)
	if len(c) != 0 {
		t.Fatalf("ExtendBase(0) must be a no-op, got %v", c)
	}
	c.ExtendBase(3, 4)
	if len(c) != 1 || c[0].Node != 3 || c[0].Base != 4 || len(c[0].Dots) != 0 {
		t.Fatalf("extend on empty = %v", c)
	}
	for _, n := range []uint64{1, 2, 3, 4} {
		if !c.Covers(Dot{Node: 3, Counter: n}) {
			t.Fatalf("counter %d not covered after ExtendBase(3,4)", n)
		}
	}
	if c.Covers(Dot{Node: 3, Counter: 5}) {
		t.Fatal("counter past the base covered")
	}
	// Extending backwards never shrinks.
	c.ExtendBase(3, 2)
	if c[0].Base != 4 {
		t.Fatalf("backward extend shrank base: %v", c)
	}
	// A widened base swallows covered isolated dots and absorbs contiguous
	// ones past it.
	c.Fold(Dot{Node: 3, Counter: 6})
	c.Fold(Dot{Node: 3, Counter: 8})
	c.Fold(Dot{Node: 3, Counter: 11})
	c.ExtendBase(3, 7)
	if c[0].Base != 8 || len(c[0].Dots) != 1 || c[0].Dots[0] != 11 {
		t.Fatalf("extend over dots = %v", c)
	}
	// Other nodes' entries are untouched, and node order is kept.
	c.ExtendBase(1, 9)
	if len(c) != 2 || c[0].Node != 1 || c[0].Base != 9 || c[1].Node != 3 || c[1].Base != 8 {
		t.Fatalf("second node extend = %v", c)
	}
}

func TestDVVUnionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randDVV := func() DVV {
		var c DVV
		for i, n := 0, rng.Intn(12); i < n; i++ {
			c.Fold(Dot{Node: uint32(rng.Intn(3) + 1), Counter: uint64(rng.Intn(10) + 1)})
		}
		return c
	}
	for i := 0; i < 500; i++ {
		a, b := randDVV(), randDVV()
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			t.Fatalf("union not commutative: %v vs %v (a=%v b=%v)", ab, ba, a, b)
		}
		again := ab.Clone()
		if again.Union(b) {
			t.Fatalf("union not idempotent: %v grew re-adding %v", again, b)
		}
		// The union covers exactly what either side covers.
		for node := uint32(1); node <= 3; node++ {
			for ctr := uint64(1); ctr <= 11; ctr++ {
				d := Dot{Node: node, Counter: ctr}
				if ab.Covers(d) != (a.Covers(d) || b.Covers(d)) {
					t.Fatalf("union coverage wrong at %v: a=%v b=%v ab=%v", d, a, b, ab)
				}
			}
		}
	}
}

func TestDVVMaxCounter(t *testing.T) {
	var c DVV
	if c.MaxCounter(1) != 0 {
		t.Fatal("empty clock max != 0")
	}
	c.Fold(Dot{Node: 1, Counter: 2})
	c.Fold(Dot{Node: 1, Counter: 9})
	if got := c.MaxCounter(1); got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	if got := c.MaxCounter(2); got != 0 {
		t.Fatalf("other node max = %d, want 0", got)
	}
}

func TestDVVCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var c DVV
		for j, n := 0, rng.Intn(8); j < n; j++ {
			c.Fold(Dot{Node: uint32(rng.Intn(4) + 1), Counter: uint64(rng.Intn(30) + 1)})
		}
		blob := EncodeDVV(c)
		if len(blob) != EncodedDVVSize(c) {
			t.Fatalf("size mismatch: %d != %d", len(blob), EncodedDVVSize(c))
		}
		got, err := DecodeDVV(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c) {
			t.Fatalf("roundtrip %v -> %v", c, got)
		}
	}
	if _, err := DecodeDVV([]byte{1}); err == nil {
		t.Fatal("truncated blob decoded")
	}
}
