package kv

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestKeySplitJoin(t *testing.T) {
	cases := []struct {
		key                  Key
		dataset, table, name string
	}{
		{Join("web", "pages", "url1"), "web", "pages", "url1"},
		{Key("web/pages/url1"), "web", "pages", "url1"},
		{Key("pages/url1"), "", "pages", "url1"},
		{Key("url1"), "", "", "url1"},
		{Key("a/b/c/d"), "a", "b", "c/d"},
		{Key(""), "", "", ""},
		{Join("", "", "x"), "", "", "x"},
	}
	for _, c := range cases {
		d, tb, n := c.key.Split()
		if d != c.dataset || tb != c.table || n != c.name {
			t.Errorf("Split(%q) = %q,%q,%q; want %q,%q,%q", c.key, d, tb, n, c.dataset, c.table, c.name)
		}
	}
}

func TestKeyAccessors(t *testing.T) {
	k := Join("ds", "tb", "nm")
	if got := k.Dataset(); got != "ds" {
		t.Errorf("Dataset = %q", got)
	}
	if got := k.Table(); got != "ds/tb" {
		t.Errorf("Table = %q", got)
	}
	if got := k.Name(); got != "nm" {
		t.Errorf("Name = %q", got)
	}
}

func TestTimestampCompare(t *testing.T) {
	a := Timestamp{Wall: 1, Logical: 0, Node: 0}
	b := Timestamp{Wall: 1, Logical: 1, Node: 0}
	c := Timestamp{Wall: 2, Logical: 0, Node: 0}
	d := Timestamp{Wall: 1, Logical: 1, Node: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) || !b.Before(d) {
		t.Fatal("ordering violated")
	}
	if a.Compare(a) != 0 {
		t.Fatal("self compare not zero")
	}
	if !c.After(a) {
		t.Fatal("After inconsistent")
	}
	if !ZeroTS.IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestTimestampCompareTotalOrder(t *testing.T) {
	f := func(w1, w2 int64, l1, l2, n1, n2 uint32) bool {
		a := Timestamp{Wall: w1, Logical: l1, Node: n1}
		b := Timestamp{Wall: w2, Logical: l2, Node: n2}
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false
		}
		if ab == 0 && a != b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock(7)
	prev := c.Now()
	if prev.Node != 7 {
		t.Fatalf("node id = %d", prev.Node)
	}
	for i := 0; i < 10000; i++ {
		ts := c.Now()
		if !ts.After(prev) {
			t.Fatalf("clock went backwards: %v then %v", prev, ts)
		}
		prev = ts
	}
}

func TestClockFrozenTimeStillMonotone(t *testing.T) {
	c := NewClockAt(1, func() int64 { return 42 })
	prev := c.Now()
	for i := 0; i < 100; i++ {
		ts := c.Now()
		if !ts.After(prev) {
			t.Fatalf("frozen clock not monotone: %v then %v", prev, ts)
		}
		if ts.Wall != 42 {
			t.Fatalf("wall = %d, want 42", ts.Wall)
		}
		prev = ts
	}
}

func TestClockObserve(t *testing.T) {
	c := NewClockAt(1, func() int64 { return 10 })
	c.Observe(Timestamp{Wall: 100, Logical: 5, Node: 9})
	ts := c.Now()
	if ts.Wall != 100 || ts.Logical != 6 {
		t.Fatalf("after observe, Now = %v; want 100.6", ts)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(3)
	const workers = 8
	const per = 2000
	seen := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Timestamp, per)
			for i := range out {
				out[i] = c.Now()
			}
			seen[w] = out
		}(w)
	}
	wg.Wait()
	all := map[Timestamp]bool{}
	for _, s := range seen {
		for i, ts := range s {
			if all[ts] {
				t.Fatalf("duplicate timestamp issued: %v", ts)
			}
			all[ts] = true
			if i > 0 && !ts.After(s[i-1]) {
				t.Fatalf("per-goroutine order violated")
			}
		}
	}
}

func TestRowApplyLatest(t *testing.T) {
	r := &Row{}
	v1 := Versioned{Value: []byte("a"), TS: Timestamp{Wall: 1}, Source: "s1"}
	if !r.ApplyLatest(v1) {
		t.Fatal("first write rejected")
	}
	if !r.Dirty {
		t.Fatal("write did not set Dirty")
	}
	// Older write must be rejected.
	v0 := Versioned{Value: []byte("old"), TS: Timestamp{Wall: 0}, Source: "s2"}
	if r.ApplyLatest(v0) {
		t.Fatal("stale write accepted")
	}
	// Equal timestamp must be rejected (not strictly newer).
	if r.ApplyLatest(v1) {
		t.Fatal("equal-timestamp write accepted")
	}
	// Newer write collapses the list to a single value.
	r.ApplyAll(Versioned{Value: []byte("b"), TS: Timestamp{Wall: 2}, Source: "s2"})
	v3 := Versioned{Value: []byte("c"), TS: Timestamp{Wall: 3}, Source: "s3"}
	if !r.ApplyLatest(v3) {
		t.Fatal("newer write rejected")
	}
	if len(r.Values) != 1 || string(r.Values[0].Value) != "c" {
		t.Fatalf("row after ApplyLatest = %+v", r.Values)
	}
}

func TestRowApplyAllPerSource(t *testing.T) {
	r := &Row{}
	if !r.ApplyAll(Versioned{Value: []byte("a1"), TS: Timestamp{Wall: 5}, Source: "a"}) {
		t.Fatal("insert rejected")
	}
	if !r.ApplyAll(Versioned{Value: []byte("b1"), TS: Timestamp{Wall: 1}, Source: "b"}) {
		t.Fatal("second source rejected despite older global ts")
	}
	// Per-source staleness: source a at ts 4 is outdated even though it is
	// newer than source b's entry.
	if r.ApplyAll(Versioned{Value: []byte("a0"), TS: Timestamp{Wall: 4}, Source: "a"}) {
		t.Fatal("stale per-source write accepted")
	}
	if !r.ApplyAll(Versioned{Value: []byte("a2"), TS: Timestamp{Wall: 6}, Source: "a"}) {
		t.Fatal("newer per-source write rejected")
	}
	if len(r.Values) != 2 {
		t.Fatalf("value list length = %d, want 2", len(r.Values))
	}
	lat, ok := r.Latest()
	if !ok || string(lat.Value) != "a2" {
		t.Fatalf("Latest = %+v, %v", lat, ok)
	}
}

func TestRowContainsExactDuplicate(t *testing.T) {
	r := &Row{}
	v := Versioned{Value: []byte("a"), TS: Timestamp{Wall: 5}, Source: "s1"}
	r.ApplyLatest(v)
	if !r.Contains(v) {
		t.Fatal("row does not contain the value just applied")
	}
	// Same timestamp, different payload/source/tombstone: not a duplicate.
	if r.Contains(Versioned{Value: []byte("b"), TS: Timestamp{Wall: 5}, Source: "s1"}) {
		t.Fatal("different payload reported as duplicate")
	}
	if r.Contains(Versioned{Value: []byte("a"), TS: Timestamp{Wall: 5}, Source: "s2"}) {
		t.Fatal("different source reported as duplicate")
	}
	if r.Contains(Versioned{Value: []byte("a"), TS: Timestamp{Wall: 5}, Source: "s1", Deleted: true}) {
		t.Fatal("tombstone reported as duplicate of live value")
	}
	if r.Contains(Versioned{Value: []byte("a"), TS: Timestamp{Wall: 6}, Source: "s1"}) {
		t.Fatal("different timestamp reported as duplicate")
	}
}

func TestRowLatestSkipsTombstones(t *testing.T) {
	r := &Row{}
	r.ApplyAll(Versioned{Value: []byte("x"), TS: Timestamp{Wall: 1}, Source: "a"})
	r.ApplyLatest(Versioned{TS: Timestamp{Wall: 2}, Source: "a", Deleted: true})
	if _, ok := r.Latest(); ok {
		t.Fatal("Latest returned a tombstone")
	}
	if v, ok := r.LatestAny(); !ok || !v.Deleted {
		t.Fatal("LatestAny should surface the tombstone")
	}
	if live := r.Live(); len(live) != 0 {
		t.Fatalf("Live = %v, want empty", live)
	}
}

func TestRowLiveSortedFreshestFirst(t *testing.T) {
	r := &Row{}
	r.ApplyAll(Versioned{Value: []byte("1"), TS: Timestamp{Wall: 1}, Source: "a"})
	r.ApplyAll(Versioned{Value: []byte("3"), TS: Timestamp{Wall: 3}, Source: "b"})
	r.ApplyAll(Versioned{Value: []byte("2"), TS: Timestamp{Wall: 2}, Source: "c"})
	live := r.Live()
	if len(live) != 3 {
		t.Fatalf("len = %d", len(live))
	}
	for i := 1; i < len(live); i++ {
		if live[i].TS.After(live[i-1].TS) {
			t.Fatalf("Live not sorted freshest first: %v", live)
		}
	}
}

func TestRowMergeCommutative(t *testing.T) {
	mk := func(src string, wall int64, val string) Versioned {
		return Versioned{Value: []byte(val), TS: Timestamp{Wall: wall}, Source: src}
	}
	a := &Row{}
	a.ApplyAll(mk("s1", 3, "a1"))
	a.ApplyAll(mk("s2", 1, "a2"))
	b := &Row{}
	b.ApplyAll(mk("s1", 2, "b1"))
	b.ApplyAll(mk("s3", 5, "b3"))

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatalf("merge not commutative:\n ab=%+v\n ba=%+v", ab.Values, ba.Values)
	}
	if len(ab.Values) != 3 {
		t.Fatalf("merged size = %d, want 3", len(ab.Values))
	}
	// s1 keeps the ts-3 copy from a.
	for _, v := range ab.Values {
		if v.Source == "s1" && string(v.Value) != "a1" {
			t.Fatalf("merge lost newer value for s1: %+v", v)
		}
	}
}

func TestRowMergeIdempotent(t *testing.T) {
	a := &Row{}
	a.ApplyAll(Versioned{Value: []byte("x"), TS: Timestamp{Wall: 2}, Source: "s"})
	before := a.Clone()
	if a.Merge(before) {
		t.Fatal("merging a row with itself reported a change")
	}
	if !a.Equal(before) {
		t.Fatal("self-merge changed the row")
	}
}

func TestRowMergeProperty(t *testing.T) {
	// Property: merge is associative and commutative over random rows, the
	// CRDT-style requirement behind read repair and replica recovery.
	type spec struct {
		Src  uint8
		Wall uint8
		Val  uint8
		Del  bool
	}
	build := func(specs []spec) *Row {
		r := &Row{}
		for _, s := range specs {
			r.ApplyAll(Versioned{
				Value:   []byte{s.Val},
				TS:      Timestamp{Wall: int64(s.Wall)},
				Source:  string(rune('a' + s.Src%5)),
				Deleted: s.Del,
			})
		}
		return r
	}
	f := func(s1, s2, s3 []spec) bool {
		a, b, c := build(s1), build(s2), build(s3)
		// (a ∪ b) ∪ c
		x := a.Clone()
		x.Merge(b)
		x.Merge(c)
		// a ∪ (c ∪ b)
		y := c.Clone()
		y.Merge(b)
		y.Merge(a)
		return x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedCloneIndependence(t *testing.T) {
	v := Versioned{Value: []byte("abc"), TS: Timestamp{Wall: 1}, Source: "s"}
	c := v.Clone()
	c.Value[0] = 'z'
	if v.Value[0] != 'a' {
		t.Fatal("Clone shares value bytes")
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := &Row{Monitors: []uint64{1, 2}}
	r.ApplyAll(Versioned{Value: []byte("abc"), TS: Timestamp{Wall: 1}, Source: "s"})
	c := r.Clone()
	c.Values[0].Value[0] = 'z'
	c.Monitors[0] = 99
	if r.Values[0].Value[0] != 'a' || r.Monitors[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}
