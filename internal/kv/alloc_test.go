//go:build !race

package kv

// Allocation budgets for the row codec hot path: a pre-sized encode is one
// allocation, and the steady-state zero-copy decode of a stable row
// (DecodeRowInto with warmed capacity and unchanged sources) is free.
// Excluded under -race because instrumentation adds allocations; the
// aliasing semantics are covered by the codec tests, which do run under it.

import "testing"

func benchRow() *Row {
	r := &Row{}
	r.ApplyAll(Versioned{Value: []byte("value-one-payload"), TS: Timestamp{Wall: 10, Node: 1}, Source: "node-a"})
	r.ApplyAll(Versioned{Value: []byte("value-two-payload"), TS: Timestamp{Wall: 20, Node: 2}, Source: "node-b"})
	r.Monitors = []uint64{1, 2, 3}
	return r
}

func TestCodecAllocBudgets(t *testing.T) {
	row := benchRow()
	blob := EncodeRow(row)

	if n := testing.AllocsPerRun(200, func() {
		if len(EncodeRow(row)) == 0 {
			t.Fatal("empty encode")
		}
	}); n > 1 {
		t.Errorf("EncodeRow allocates %.1f/op, want <= 1", n)
	}

	// Scratch-reusing append: zero allocations once dst has capacity.
	dst := make([]byte, 0, EncodedRowSize(row))
	if n := testing.AllocsPerRun(200, func() {
		dst = AppendRow(dst[:0], row)
	}); n > 0 {
		t.Errorf("AppendRow into sized scratch allocates %.1f/op, want 0", n)
	}

	// Steady-state zero-copy decode: after the first decode warms the
	// scratch row, re-decoding the same shape allocates nothing.
	var scratch Row
	if err := DecodeRowInto(&scratch, blob); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeRowInto(&scratch, blob); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("warmed DecodeRowInto allocates %.1f/op, want 0", n)
	}
}

func TestDecodeRowIntoAliasesInput(t *testing.T) {
	row := benchRow()
	blob := EncodeRow(row)
	var r Row
	if err := DecodeRowInto(&r, blob); err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 2 {
		t.Fatalf("got %d values", len(r.Values))
	}
	for _, v := range r.Values {
		if len(v.Value) == 0 {
			continue
		}
		p := &v.Value[0]
		inside := false
		for i := range blob {
			if p == &blob[i] {
				inside = true
				break
			}
		}
		if !inside {
			t.Error("DecodeRowInto copied a value instead of aliasing the input")
		}
	}
	// And the copying decode must NOT alias.
	dr, err := DecodeRow(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dr.Values {
		for i := range blob {
			if len(v.Value) > 0 && &v.Value[0] == &blob[i] {
				t.Fatal("DecodeRow aliases the input")
			}
		}
	}
}
