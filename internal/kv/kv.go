// Package kv defines the core data model shared by every Sedna subsystem:
// hierarchical keys, hybrid logical timestamps, versioned values and the
// multi-source value lists that back the paper's write_latest/write_all
// semantics (§III-F), plus the Dirty/Monitors row metadata that drives the
// trigger engine (§IV-C, Fig. 5).
package kv

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Key is a flat string key. Sedna extends the key implicitly to provide a
// hierarchical data space (§II-A.1): a fully-qualified key has the form
// "dataset/table/name". Use Split/Join to move between the flat and the
// hierarchical representations.
type Key string

// KeySep separates the dataset, table and name components of a Key.
const KeySep = "/"

// Join builds a fully-qualified key from its hierarchy components. Empty
// components are permitted (e.g. a bare name living in the default table).
func Join(dataset, table, name string) Key {
	return Key(dataset + KeySep + table + KeySep + name)
}

// Split breaks a key into its dataset, table and name components. Keys with
// fewer than two separators are treated as living in the default ("" )
// dataset and/or table.
func (k Key) Split() (dataset, table, name string) {
	s := string(k)
	i := strings.Index(s, KeySep)
	if i < 0 {
		return "", "", s
	}
	j := strings.Index(s[i+1:], KeySep)
	if j < 0 {
		return "", s[:i], s[i+1:]
	}
	j += i + 1
	return s[:i], s[i+1 : j], s[j+1:]
}

// Dataset returns the dataset component of the key.
func (k Key) Dataset() string { d, _, _ := k.Split(); return d }

// Table returns the "dataset/table" prefix of the key, the granularity at
// which monitors may also be registered.
func (k Key) Table() string {
	d, t, _ := k.Split()
	return d + KeySep + t
}

// Name returns the final component of the key.
func (k Key) Name() string { _, _, n := k.Split(); return n }

// Timestamp is a hybrid logical clock value. Sedna timestamps every write
// and resolves concurrent writes by "newer timestamp wins" (§III-F.1); a
// hybrid clock keeps that rule meaningful across servers whose wall clocks
// drift, while remaining totally ordered.
type Timestamp struct {
	// Wall is the physical component in nanoseconds since the Unix epoch.
	Wall int64
	// Logical breaks ties between events in the same wall tick.
	Logical uint32
	// Node breaks the remaining ties deterministically; it identifies the
	// server that issued the write.
	Node uint32
}

// ZeroTS is the timestamp older than every real timestamp.
var ZeroTS = Timestamp{}

// Compare returns -1, 0 or +1 as t is older than, equal to, or newer than o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Wall != o.Wall:
		if t.Wall < o.Wall {
			return -1
		}
		return 1
	case t.Logical != o.Logical:
		if t.Logical < o.Logical {
			return -1
		}
		return 1
	case t.Node != o.Node:
		if t.Node < o.Node {
			return -1
		}
		return 1
	}
	return 0
}

// Before reports whether t is strictly older than o.
func (t Timestamp) Before(o Timestamp) bool { return t.Compare(o) < 0 }

// After reports whether t is strictly newer than o.
func (t Timestamp) After(o Timestamp) bool { return t.Compare(o) > 0 }

// IsZero reports whether t is the zero timestamp.
func (t Timestamp) IsZero() bool { return t == ZeroTS }

// String renders the timestamp compactly for logs and test failures.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d@%d", t.Wall, t.Logical, t.Node)
}

// Clock issues monotonically increasing hybrid timestamps for one node. It
// is safe for concurrent use.
type Clock struct {
	node uint32
	now  func() int64

	mu   sync.Mutex
	wall int64
	log  uint32
}

// NewClock returns a Clock owned by the given node id. The zero node id is
// valid. The clock uses the real time; tests may substitute a fake time
// source with NewClockAt.
func NewClock(node uint32) *Clock {
	return NewClockAt(node, func() int64 { return time.Now().UnixNano() })
}

// NewClockAt returns a Clock reading physical time from now. It exists so
// tests can drive the clock deterministically.
func NewClockAt(node uint32, now func() int64) *Clock {
	return &Clock{node: node, now: now}
}

// Now returns the next timestamp, strictly newer than every timestamp this
// clock has previously returned or observed.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	phys := c.now()
	if phys > c.wall {
		c.wall, c.log = phys, 0
	} else {
		c.log++
	}
	return Timestamp{Wall: c.wall, Logical: c.log, Node: c.node}
}

// Observe folds a timestamp received from another node into the clock so
// that subsequent local timestamps sort after it (the "receive" rule of a
// hybrid logical clock).
func (c *Clock) Observe(t Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Wall > c.wall || (t.Wall == c.wall && t.Logical > c.log) {
		c.wall, c.log = t.Wall, t.Logical
	}
}

// Versioned is one timestamped value written by one source server. The
// value list kept for write_all is a slice of these, one per source.
type Versioned struct {
	// Value is the raw payload.
	Value []byte
	// TS is the write timestamp; newer timestamps overwrite older ones.
	TS Timestamp
	// Source identifies the writer, used by write_all to select which
	// list element a write updates (§III-F.1).
	Source string
	// Deleted marks a tombstone: the source removed its value. Tombstones
	// keep deletes monotone under the timestamp rule.
	Deleted bool
}

// Clone returns a deep copy of v; the value bytes are not shared.
func (v Versioned) Clone() Versioned {
	if v.Value != nil {
		dup := make([]byte, len(v.Value))
		copy(dup, v.Value)
		v.Value = dup
	}
	return v
}

// Row is the unit Sedna stores per key: the multi-source value list plus the
// two extra columns of Fig. 5, Dirty and Monitors, that the trigger scanner
// consumes.
type Row struct {
	// Values holds at most one Versioned per source, the write_all list.
	// It is kept sorted by Source for deterministic encoding.
	Values []Versioned
	// Dirty is set on every write and cleared by the trigger scanner.
	Dirty bool
	// Monitors lists ids of trigger jobs watching this exact key (table
	// and dataset monitors are resolved from the key hierarchy instead).
	Monitors []uint64
}

// Latest returns the freshest non-tombstone value in the row and true, or a
// zero Versioned and false when the row holds no live value.
func (r *Row) Latest() (Versioned, bool) {
	var best Versioned
	found := false
	for _, v := range r.Values {
		if !found || v.TS.After(best.TS) {
			best, found = v, true
		}
	}
	if !found || best.Deleted {
		return Versioned{}, false
	}
	return best, true
}

// LatestAny returns the freshest entry including tombstones; it is what the
// replica protocol compares against for write_latest.
func (r *Row) LatestAny() (Versioned, bool) {
	var best Versioned
	found := false
	for _, v := range r.Values {
		if !found || v.TS.After(best.TS) {
			best, found = v, true
		}
	}
	return best, found
}

// Live returns the live (non-tombstone) values in the row, freshest first.
func (r *Row) Live() []Versioned {
	out := make([]Versioned, 0, len(r.Values))
	for _, v := range r.Values {
		if !v.Deleted {
			out = append(out, v)
		}
	}
	// insertion sort by descending timestamp; lists are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TS.After(out[j-1].TS); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ApplyLatest implements the replica-side rule for write_latest (§III-F.1):
// if the incoming timestamp is newer than everything stored, the row
// collapses to the single incoming value and ApplyLatest returns true
// ("ok"); otherwise the row is unchanged and it returns false ("outdated").
func (r *Row) ApplyLatest(v Versioned) bool {
	if cur, ok := r.LatestAny(); ok && !v.TS.After(cur.TS) {
		return false
	}
	r.Values = r.Values[:0]
	r.Values = append(r.Values, v)
	r.Dirty = true
	return true
}

// ApplyAll implements the replica-side rule for write_all (§III-F.1): only
// the element that came from the same source is compared and, if the
// incoming write is newer, replaced. It returns true for "ok" and false for
// "outdated".
func (r *Row) ApplyAll(v Versioned) bool {
	for i := range r.Values {
		if r.Values[i].Source == v.Source {
			if !v.TS.After(r.Values[i].TS) {
				return false
			}
			r.Values[i] = v
			r.Dirty = true
			r.sortValues()
			return true
		}
	}
	r.Values = append(r.Values, v)
	r.Dirty = true
	r.sortValues()
	return true
}

// Merge folds another row's value list into r, keeping per source the newer
// entry. It returns true if r changed. Merge is the anti-entropy primitive
// used by read repair and replica recovery.
func (r *Row) Merge(o *Row) bool {
	changed := false
	for _, v := range o.Values {
		if r.mergeOne(v) {
			changed = true
		}
	}
	if changed {
		r.Dirty = true
		r.sortValues()
	}
	return changed
}

func (r *Row) mergeOne(v Versioned) bool {
	for i := range r.Values {
		if r.Values[i].Source == v.Source {
			cur := &r.Values[i]
			switch cmp := v.TS.Compare(cur.TS); {
			case cmp > 0:
				*cur = v
				return true
			case cmp == 0 && tieLess(*cur, v):
				// Equal timestamps with different content should never
				// arise from a correct source clock, but Merge must still
				// converge: break the tie with a deterministic total order
				// so every replica picks the same winner.
				*cur = v
				return true
			}
			return false
		}
	}
	r.Values = append(r.Values, v)
	return true
}

// tieLess is an arbitrary but deterministic total order over same-timestamp
// values: tombstones win over live values, then the lexically larger payload
// wins. It only decides pathological timestamp collisions.
func tieLess(a, b Versioned) bool {
	if a.Deleted != b.Deleted {
		return b.Deleted
	}
	return string(a.Value) < string(b.Value)
}

func (r *Row) sortValues() {
	for i := 1; i < len(r.Values); i++ {
		for j := i; j > 0 && r.Values[j].Source < r.Values[j-1].Source; j-- {
			r.Values[j], r.Values[j-1] = r.Values[j-1], r.Values[j]
		}
	}
}

// Clone deep-copies the row.
func (r *Row) Clone() *Row {
	c := &Row{Dirty: r.Dirty}
	c.Values = make([]Versioned, len(r.Values))
	for i, v := range r.Values {
		c.Values[i] = v.Clone()
	}
	if r.Monitors != nil {
		c.Monitors = append([]uint64(nil), r.Monitors...)
	}
	return c
}

// Contains reports whether the row holds an entry exactly equal to v (same
// source, timestamp, tombstone flag and payload). The replica write path
// uses it to recognise a re-sent duplicate as already applied ("ok") rather
// than rejecting it as outdated, which makes timestamped writes idempotent
// under retry.
func (r *Row) Contains(v Versioned) bool {
	for _, cur := range r.Values {
		if cur.Source == v.Source && cur.TS == v.TS && cur.Deleted == v.Deleted && string(cur.Value) == string(v.Value) {
			return true
		}
	}
	return false
}

// Equal reports whether two rows hold the same value lists (ignoring the
// Dirty and Monitors bookkeeping columns).
func (r *Row) Equal(o *Row) bool {
	if len(r.Values) != len(o.Values) {
		return false
	}
	for i := range r.Values {
		a, b := r.Values[i], o.Values[i]
		if a.Source != b.Source || a.TS != b.TS || a.Deleted != b.Deleted || string(a.Value) != string(b.Value) {
			return false
		}
	}
	return true
}
