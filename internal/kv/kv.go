// Package kv defines the core data model shared by every Sedna subsystem:
// hierarchical keys, hybrid logical timestamps, versioned values and the
// multi-source value lists that back the paper's write_latest/write_all
// semantics (§III-F), plus the Dirty/Monitors row metadata that drives the
// trigger engine (§IV-C, Fig. 5).
package kv

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Key is a flat string key. Sedna extends the key implicitly to provide a
// hierarchical data space (§II-A.1): a fully-qualified key has the form
// "dataset/table/name". Use Split/Join to move between the flat and the
// hierarchical representations.
type Key string

// KeySep separates the dataset, table and name components of a Key.
const KeySep = "/"

// Join builds a fully-qualified key from its hierarchy components. Empty
// components are permitted (e.g. a bare name living in the default table).
func Join(dataset, table, name string) Key {
	return Key(dataset + KeySep + table + KeySep + name)
}

// Split breaks a key into its dataset, table and name components. Keys with
// fewer than two separators are treated as living in the default ("" )
// dataset and/or table.
func (k Key) Split() (dataset, table, name string) {
	s := string(k)
	i := strings.Index(s, KeySep)
	if i < 0 {
		return "", "", s
	}
	j := strings.Index(s[i+1:], KeySep)
	if j < 0 {
		return "", s[:i], s[i+1:]
	}
	j += i + 1
	return s[:i], s[i+1 : j], s[j+1:]
}

// Dataset returns the dataset component of the key.
func (k Key) Dataset() string { d, _, _ := k.Split(); return d }

// Table returns the "dataset/table" prefix of the key, the granularity at
// which monitors may also be registered.
func (k Key) Table() string {
	d, t, _ := k.Split()
	return d + KeySep + t
}

// Name returns the final component of the key.
func (k Key) Name() string { _, _, n := k.Split(); return n }

// Timestamp is a hybrid logical clock value. Sedna timestamps every write
// and resolves concurrent writes by "newer timestamp wins" (§III-F.1); a
// hybrid clock keeps that rule meaningful across servers whose wall clocks
// drift, while remaining totally ordered.
type Timestamp struct {
	// Wall is the physical component in nanoseconds since the Unix epoch.
	Wall int64
	// Logical breaks ties between events in the same wall tick.
	Logical uint32
	// Node breaks the remaining ties deterministically; it identifies the
	// server that issued the write.
	Node uint32
}

// ZeroTS is the timestamp older than every real timestamp.
var ZeroTS = Timestamp{}

// Compare returns -1, 0 or +1 as t is older than, equal to, or newer than o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Wall != o.Wall:
		if t.Wall < o.Wall {
			return -1
		}
		return 1
	case t.Logical != o.Logical:
		if t.Logical < o.Logical {
			return -1
		}
		return 1
	case t.Node != o.Node:
		if t.Node < o.Node {
			return -1
		}
		return 1
	}
	return 0
}

// Before reports whether t is strictly older than o.
func (t Timestamp) Before(o Timestamp) bool { return t.Compare(o) < 0 }

// After reports whether t is strictly newer than o.
func (t Timestamp) After(o Timestamp) bool { return t.Compare(o) > 0 }

// IsZero reports whether t is the zero timestamp.
func (t Timestamp) IsZero() bool { return t == ZeroTS }

// String renders the timestamp compactly for logs and test failures.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d@%d", t.Wall, t.Logical, t.Node)
}

// Clock issues monotonically increasing hybrid timestamps for one node. It
// is safe for concurrent use.
type Clock struct {
	node uint32
	now  func() int64

	mu   sync.Mutex
	wall int64
	log  uint32
}

// NewClock returns a Clock owned by the given node id. The zero node id is
// valid. The clock uses the real time; tests may substitute a fake time
// source with NewClockAt.
func NewClock(node uint32) *Clock {
	return NewClockAt(node, func() int64 { return time.Now().UnixNano() })
}

// NewClockAt returns a Clock reading physical time from now. It exists so
// tests can drive the clock deterministically.
func NewClockAt(node uint32, now func() int64) *Clock {
	return &Clock{node: node, now: now}
}

// Now returns the next timestamp, strictly newer than every timestamp this
// clock has previously returned or observed.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	phys := c.now()
	if phys > c.wall {
		c.wall, c.log = phys, 0
	} else {
		c.log++
	}
	return Timestamp{Wall: c.wall, Logical: c.log, Node: c.node}
}

// Node returns the id this clock stamps into timestamps (and that the
// coordinator mints write dots under).
func (c *Clock) Node() uint32 { return c.node }

// Observe folds a timestamp received from another node into the clock so
// that subsequent local timestamps sort after it (the "receive" rule of a
// hybrid logical clock).
func (c *Clock) Observe(t Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Wall > c.wall || (t.Wall == c.wall && t.Logical > c.log) {
		c.wall, c.log = t.Wall, t.Logical
	}
}

// Versioned is one timestamped value written by one source server. The
// value list kept for write_all is a slice of these; dotted (causal) rows
// may additionally hold concurrent siblings from the same source window.
type Versioned struct {
	// Value is the raw payload.
	Value []byte
	// TS is the write timestamp; newer timestamps overwrite older ones.
	TS Timestamp
	// Source identifies the writer, used by write_all to select which
	// list element a write updates (§III-F.1).
	Source string
	// Deleted marks a tombstone: the source removed its value. Tombstones
	// keep deletes monotone under the timestamp rule.
	Deleted bool
	// Dot is the write's causal event id, minted by the coordinator. The
	// zero dot marks a legacy value resolved by the timestamp rules.
	Dot Dot
	// Ctx is the causal context the writer had read when it issued this
	// write: the events the write supersedes. It travels with the value
	// through the replica protocol and hint queues, is consumed by
	// ApplyCausal/Merge, and is never stored in row blobs (the row's Clock
	// absorbs it).
	Ctx DVV
}

// Clone returns a deep copy of v; neither value bytes nor context are
// shared.
func (v Versioned) Clone() Versioned {
	if v.Value != nil {
		dup := make([]byte, len(v.Value))
		copy(dup, v.Value)
		v.Value = dup
	}
	v.Ctx = v.Ctx.Clone()
	return v
}

// Row is the unit Sedna stores per key: the multi-source value list plus the
// two extra columns of Fig. 5, Dirty and Monitors, that the trigger scanner
// consumes.
type Row struct {
	// Values holds the row's value list: for legacy rows at most one
	// Versioned per source (the write_all list); causal rows may hold
	// concurrent dotted siblings. It is kept sorted by (Source, TS, Dot)
	// for deterministic encoding.
	Values []Versioned
	// Dirty is set on every write and cleared by the trigger scanner.
	Dirty bool
	// Monitors lists ids of trigger jobs watching this exact key (table
	// and dataset monitors are resolved from the key hierarchy instead).
	Monitors []uint64
	// Clock is the row's dotted version vector: exactly the write events
	// this replica has observed for the key. A value whose dot another
	// row's clock covers — but which that row no longer holds — was seen
	// and causally superseded there, so Merge discards it instead of
	// resurrecting it.
	Clock DVV
	// Obs counts siblings evicted by the bounded fan-out cap, so capped
	// truncation is never silent: a non-zero Obs tells readers the sibling
	// set is incomplete. Merge takes the max.
	Obs uint32
}

// DefaultSiblingCap bounds the concurrent sibling fan-out per row when the
// caller passes a non-positive cap to ApplyCausal/EnforceSiblingCap.
const DefaultSiblingCap = 16

// Latest returns the freshest live (non-tombstone) value in the row and
// true, or a zero Versioned and false when the row holds none. A newer
// tombstone from one source does not shadow other sources' live values: a
// write_all row keeps per-source semantics, so one source's delete must not
// erase the others' data on read (only that source's own entry).
func (r *Row) Latest() (Versioned, bool) {
	var best Versioned
	found := false
	for _, v := range r.Values {
		if v.Deleted {
			continue
		}
		if !found || v.TS.After(best.TS) {
			best, found = v, true
		}
	}
	return best, found
}

// LatestAny returns the freshest entry including tombstones; it is what the
// replica protocol compares against for write_latest.
func (r *Row) LatestAny() (Versioned, bool) {
	var best Versioned
	found := false
	for _, v := range r.Values {
		if !found || v.TS.After(best.TS) {
			best, found = v, true
		}
	}
	return best, found
}

// Live returns the live (non-tombstone) values in the row, freshest first.
func (r *Row) Live() []Versioned {
	out := make([]Versioned, 0, len(r.Values))
	for _, v := range r.Values {
		if !v.Deleted {
			out = append(out, v)
		}
	}
	// insertion sort by descending timestamp; lists are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TS.After(out[j-1].TS); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ApplyLatest implements the replica-side rule for write_latest (§III-F.1):
// if the incoming timestamp is newer than everything stored, the row
// collapses to the single incoming value and ApplyLatest returns true
// ("ok"); otherwise the row is unchanged and it returns false ("outdated").
func (r *Row) ApplyLatest(v Versioned) bool {
	if cur, ok := r.LatestAny(); ok && !v.TS.After(cur.TS) {
		return false
	}
	r.Values = r.Values[:0]
	r.Values = append(r.Values, v)
	r.Dirty = true
	return true
}

// ApplyAll implements the replica-side rule for write_all (§III-F.1): only
// the element that came from the same source is compared and, if the
// incoming write is newer, replaced. It returns true for "ok" and false for
// "outdated".
func (r *Row) ApplyAll(v Versioned) bool {
	for i := range r.Values {
		if r.Values[i].Source == v.Source {
			if !v.TS.After(r.Values[i].TS) {
				return false
			}
			r.Values[i] = v
			r.Dirty = true
			r.sortValues()
			return true
		}
	}
	r.Values = append(r.Values, v)
	r.Dirty = true
	r.sortValues()
	return true
}

// ApplyCausal applies one dotted write: the replica-side rule of the
// dotted-version-vector protocol. The write supersedes exactly the stored
// values its causal context covers (and — under write_latest — legacy
// dotless values with older timestamps); everything else is concurrent and
// is retained as a sibling. A dotted write is never "outdated": ApplyCausal
// returns true when the row changed and false when the event was already
// observed (an idempotent redelivery).
//
// latest selects the write_latest discard rules; write_all keeps per-source
// semantics, so the context only discards the writer's own source's values
// there. cap bounds the sibling fan-out (<=0 selects DefaultSiblingCap).
func (r *Row) ApplyCausal(v Versioned, latest bool, cap int) bool {
	if v.Dot.IsZero() {
		// Defensive: a dotless write has no causal identity; fall back to
		// the legacy rules so the row never records an unmintable event.
		if latest {
			return r.ApplyLatest(v)
		}
		return r.ApplyAll(v)
	}
	if r.Clock.Covers(v.Dot) {
		return false // replay of an observed event
	}
	// Supersession is purely causal: only the write's context retires stored
	// values. Anything TS-based here would depend on what happens to be
	// stored at arrival time, and delivery reordering would make replicas
	// diverge. Program order arrives AS context — the coordinator stamps a
	// blind write with the causal state it has already accepted.
	keep := r.Values[:0]
	for _, w := range r.Values {
		switch {
		case !w.Dot.IsZero() && v.Ctx.Covers(w.Dot) && (latest || w.Source == v.Source):
			// The writer had observed this value and overwrote it. Under
			// write_all the context only retires the writer's own source's
			// values — the other sources' list entries are not its to drop.
		case w.Dot.IsZero() && latest && w.TS.Before(v.TS):
			// Legacy bridge: a dotted write_latest supersedes older
			// pre-DVV values by the timestamp rule they were written under.
		default:
			keep = append(keep, w)
		}
	}
	r.Values = keep
	r.Clock.Fold(v.Dot)
	// Folding the whole context into the clock is what lets Merge read
	// covered-and-absent as superseded — and Merge is source-blind. That is
	// only sound because coordinators never ship a write_all context
	// covering another source's events (core.blindCtx): a context that did
	// would poison a reordered replica's clock into discarding that
	// source's acked value from every merged read.
	r.Clock.Union(v.Ctx)
	v.Ctx = nil // contexts are consumed, never stored
	r.Values = append(r.Values, v)
	r.sortValues()
	r.EnforceSiblingCap(cap)
	r.Dirty = true
	return true
}

// EnforceSiblingCap bounds the dotted sibling fan-out: when more than cap
// dotted values are stored, the causally oldest — smallest (TS, Dot) — are
// evicted deterministically, so every replica drops the same ones. Evicted
// dots stay covered by the clock (the eviction propagates through Merge
// instead of resurrecting) and each eviction increments Obs, the witness
// that makes truncation visible to readers. Legacy dotless values are never
// evicted. It returns the number of values evicted; cap<=0 selects
// DefaultSiblingCap.
func (r *Row) EnforceSiblingCap(cap int) int {
	if cap <= 0 {
		cap = DefaultSiblingCap
	}
	dotted := 0
	for i := range r.Values {
		if !r.Values[i].Dot.IsZero() {
			dotted++
		}
	}
	evicted := 0
	for dotted > cap {
		victim := -1
		for i := range r.Values {
			if r.Values[i].Dot.IsZero() {
				continue
			}
			if victim < 0 || evictBefore(r.Values[i], r.Values[victim]) {
				victim = i
			}
		}
		r.Values = append(r.Values[:victim], r.Values[victim+1:]...)
		dotted--
		evicted++
	}
	if evicted > 0 {
		r.Obs += uint32(evicted)
		r.Dirty = true
	}
	return evicted
}

// evictBefore orders eviction victims: older timestamp first, dot order
// breaking ties — a total order, so replicas evict identically.
func evictBefore(a, b Versioned) bool {
	if c := a.TS.Compare(b.TS); c != 0 {
		return c < 0
	}
	return a.Dot.Less(b.Dot)
}

// Merge folds another row into r: the anti-entropy primitive behind read
// repair, hinted handoff, recovery and migration. Dotted values follow the
// DVV sync rule — a value survives unless the other side's clock covers its
// dot while no longer holding it (seen and causally superseded there);
// legacy dotless values keep the per-source newest-timestamp rule. The
// clocks union. Merge is
// commutative, associative and idempotent, so replicas converge regardless
// of delivery order. It returns true if r changed.
func (r *Row) Merge(o *Row) bool {
	changed := false
	// Discard r's dotted values the other row observed and dropped.
	if !o.Clock.IsEmpty() {
		keep := r.Values[:0]
		for _, w := range r.Values {
			if !w.Dot.IsZero() && o.Clock.Covers(w.Dot) && !o.holdsDot(w.Dot) {
				changed = true
				continue
			}
			keep = append(keep, w)
		}
		r.Values = keep
	}
	// Fold in o's values.
	for _, v := range o.Values {
		if v.Dot.IsZero() {
			if r.mergeOne(v) {
				changed = true
			}
			continue
		}
		if i := r.dotIndex(v.Dot); i >= 0 {
			// Same event on both sides; contents agree unless an actor-id
			// hash collision re-minted the counter (boot-scoped actor ids
			// make that astronomically unlikely, not impossible). Resolve by
			// the deterministic newest-timestamp order so every replica
			// keeps the same — and most recent — winner.
			if !sameValue(r.Values[i], v) && dotCollisionLess(r.Values[i], v) {
				r.Values[i] = v
				r.Values[i].Ctx = nil
				changed = true
			}
			continue
		}
		if r.Clock.Covers(v.Dot) {
			continue // seen and superseded here
		}
		v.Ctx = nil
		r.Values = append(r.Values, v)
		changed = true
	}
	if r.Clock.Union(o.Clock) {
		changed = true
	}
	if o.Obs > r.Obs {
		r.Obs = o.Obs
		changed = true
	}
	if changed {
		r.Dirty = true
		r.sortValues()
	}
	return changed
}

// holdsDot reports whether the row still stores the value of event d.
func (r *Row) holdsDot(d Dot) bool { return r.dotIndex(d) >= 0 }

func (r *Row) dotIndex(d Dot) int {
	for i := range r.Values {
		if r.Values[i].Dot == d {
			return i
		}
	}
	return -1
}

func sameValue(a, b Versioned) bool {
	return a.Source == b.Source && a.TS == b.TS && a.Deleted == b.Deleted && string(a.Value) == string(b.Value)
}

func (r *Row) mergeOne(v Versioned) bool {
	// The per-source newest-timestamp rule is the LEGACY rule: it compares
	// only dotless values against each other. A dotted value is never its
	// match target — replacing one here would orphan a dot the clock still
	// covers (unrecoverable), and whether it happens would depend on merge
	// order.
	for i := range r.Values {
		if r.Values[i].Source == v.Source && r.Values[i].Dot.IsZero() {
			cur := &r.Values[i]
			switch cmp := v.TS.Compare(cur.TS); {
			case cmp > 0:
				*cur = v
				return true
			case cmp == 0 && tieLess(*cur, v):
				// Equal timestamps with different content should never
				// arise from a correct source clock, but Merge must still
				// converge: break the tie with a deterministic total order
				// so every replica picks the same winner.
				*cur = v
				return true
			}
			return false
		}
	}
	r.Values = append(r.Values, v)
	return true
}

// dotCollisionLess orders two different values minted under the same dot:
// older timestamp loses, ties fall through to tieLess. Total and
// deterministic, so replicas converge on one winner — and it is the newer
// write that survives.
func dotCollisionLess(a, b Versioned) bool {
	if c := a.TS.Compare(b.TS); c != 0 {
		return c < 0
	}
	return tieLess(a, b)
}

// tieLess is an arbitrary but deterministic total order over same-timestamp
// values: tombstones win over live values, then the lexically larger payload
// wins. It only decides pathological timestamp collisions.
func tieLess(a, b Versioned) bool {
	if a.Deleted != b.Deleted {
		return b.Deleted
	}
	return string(a.Value) < string(b.Value)
}

// sortValues keeps the list in a deterministic total order — by Source,
// then TS, then Dot — so encodings and Equal comparisons are stable across
// replicas even when a source holds multiple concurrent siblings.
func (r *Row) sortValues() {
	less := func(a, b Versioned) bool {
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if c := a.TS.Compare(b.TS); c != 0 {
			return c < 0
		}
		return a.Dot.Less(b.Dot)
	}
	for i := 1; i < len(r.Values); i++ {
		for j := i; j > 0 && less(r.Values[j], r.Values[j-1]); j-- {
			r.Values[j], r.Values[j-1] = r.Values[j-1], r.Values[j]
		}
	}
}

// RowFromWrite builds the single-value row used to hint one undelivered
// write. For a dotted write_latest the row's clock covers the dot and the
// write's causal context, so delivering the hint by Merge performs the same
// supersession ApplyCausal would have (context-covered siblings at the
// destination are discarded, concurrent ones retained). A write_all hint
// folds only its own dot: ApplyCausal scopes all-mode supersession to the
// writer's source, but Merge's covered-and-absent rule is source-blind — a
// full-context clock on a one-value row would discard other sources' live
// values at the destination. The sibling this leaves behind is retired
// later by merging with any replica whose clock covers it.
func RowFromWrite(v Versioned, latest bool) *Row {
	r := &Row{Values: []Versioned{v.Clone()}}
	if !v.Dot.IsZero() {
		r.Clock.Fold(v.Dot)
		if latest {
			r.Clock.Union(v.Ctx)
		}
		r.Values[0].Ctx = nil
	}
	return r
}

// Clone deep-copies the row.
func (r *Row) Clone() *Row {
	c := &Row{Dirty: r.Dirty, Obs: r.Obs, Clock: r.Clock.Clone()}
	c.Values = make([]Versioned, len(r.Values))
	for i, v := range r.Values {
		c.Values[i] = v.Clone()
	}
	if r.Monitors != nil {
		c.Monitors = append([]uint64(nil), r.Monitors...)
	}
	return c
}

// Contains reports whether the row holds an entry exactly equal to v (same
// source, timestamp, dot, tombstone flag and payload). The replica write
// path uses it to recognise a re-sent duplicate as already applied ("ok")
// rather than rejecting it as outdated, which makes timestamped writes
// idempotent under retry.
func (r *Row) Contains(v Versioned) bool {
	for _, cur := range r.Values {
		if cur.Dot == v.Dot && sameValue(cur, v) {
			return true
		}
	}
	return false
}

// Equal reports whether two rows hold the same value lists and causal state
// (ignoring the Dirty and Monitors bookkeeping columns). Clock and Obs take
// part: replicas whose values agree but whose observed sets differ have not
// converged, and read repair must still run.
func (r *Row) Equal(o *Row) bool {
	if len(r.Values) != len(o.Values) || r.Obs != o.Obs || !r.Clock.Equal(o.Clock) {
		return false
	}
	for i := range r.Values {
		a, b := r.Values[i], o.Values[i]
		if a.Dot != b.Dot || !sameValue(a, b) {
			return false
		}
	}
	return true
}
