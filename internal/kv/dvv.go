package kv

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Dotted version vectors (Preguiça, Baquero et al.) give Sedna the causal
// metadata that distinguishes "newer" from "concurrent": every replicated
// write is tagged with a Dot — a globally unique event id — and every row
// carries a DVV summarising exactly which dots it has observed. A write
// supersedes precisely the values its causal context covers; everything else
// is concurrent and is retained as a sibling instead of being silently
// discarded by the timestamp rule (§III-F.1's lost-update bug).

// Dot is one write event: the Counter-th write coordinated by Node for this
// key. The zero Dot marks a legacy (pre-DVV) value.
type Dot struct {
	// Node identifies the coordinator that minted the event (the same id
	// the node stamps into Timestamp.Node).
	Node uint32
	// Counter is the per-(node,key) sequence number, starting at 1.
	Counter uint64
}

// IsZero reports whether d is the zero dot (a legacy, dotless value).
func (d Dot) IsZero() bool { return d == Dot{} }

// Less orders dots deterministically (by node, then counter); it only
// exists so sibling eviction and encoding are stable across replicas.
func (d Dot) Less(o Dot) bool {
	if d.Node != o.Node {
		return d.Node < o.Node
	}
	return d.Counter < o.Counter
}

// String renders the dot compactly for logs and test failures.
func (d Dot) String() string { return fmt.Sprintf("(%d,%d)", d.Node, d.Counter) }

// DVVEntry is one node's slice of a DVV. Unlike a classic version vector —
// whose single max counter would wrongly "cover" in-flight events it has
// never seen (delivery of dot 6 before dot 4 would drop dot 4 as seen) —
// the entry keeps the exact observed set: the contiguous prefix 1..Base
// plus any isolated counters beyond it, which fold back into Base as the
// gaps fill.
type DVVEntry struct {
	Node uint32
	// Base means every counter in 1..Base has been observed.
	Base uint64
	// Dots lists observed counters > Base+1, sorted ascending, each unique.
	Dots []uint64
}

// DVV is a dotted version vector: per node, the exact set of observed write
// events for one key. Entries are kept sorted by Node for deterministic
// encoding. The zero value is the empty (nothing observed) vector.
type DVV []DVVEntry

// find returns the index of node's entry, or -1.
func (c DVV) find(node uint32) int {
	for i := range c {
		if c[i].Node == node {
			return i
		}
	}
	return -1
}

// Covers reports whether the vector has observed event d. The zero dot is
// never covered: legacy values sit outside the causal order.
func (c DVV) Covers(d Dot) bool {
	if d.IsZero() {
		return false
	}
	i := c.find(d.Node)
	if i < 0 {
		return false
	}
	e := &c[i]
	if d.Counter <= e.Base {
		return true
	}
	j := sort.Search(len(e.Dots), func(k int) bool { return e.Dots[k] >= d.Counter })
	return j < len(e.Dots) && e.Dots[j] == d.Counter
}

// Fold records event d as observed, absorbing any isolated dots that become
// contiguous with the base. Folding the zero dot is a no-op.
func (c *DVV) Fold(d Dot) {
	if d.IsZero() {
		return
	}
	i := c.find(d.Node)
	if i < 0 {
		// Insert keeping the node order.
		i = sort.Search(len(*c), func(k int) bool { return (*c)[k].Node >= d.Node })
		*c = append(*c, DVVEntry{})
		copy((*c)[i+1:], (*c)[i:])
		(*c)[i] = DVVEntry{Node: d.Node}
	}
	e := &(*c)[i]
	switch {
	case d.Counter <= e.Base:
		return
	case d.Counter == e.Base+1:
		e.Base = d.Counter
		e.absorb()
	default:
		j := sort.Search(len(e.Dots), func(k int) bool { return e.Dots[k] >= d.Counter })
		if j < len(e.Dots) && e.Dots[j] == d.Counter {
			return
		}
		e.Dots = append(e.Dots, 0)
		copy(e.Dots[j+1:], e.Dots[j:])
		e.Dots[j] = d.Counter
	}
}

// ExtendBase raises node's contiguous base to at least counter, swallowing
// isolated dots the widened base now covers. A coordinator uses this to make
// a blind write's context cover the writer's own minted history 1..counter
// even when some of those writes have not yet applied locally. counter 0 is
// a no-op.
func (c *DVV) ExtendBase(node uint32, counter uint64) {
	if counter == 0 {
		return
	}
	i := c.find(node)
	if i < 0 {
		i = sort.Search(len(*c), func(k int) bool { return (*c)[k].Node >= node })
		*c = append(*c, DVVEntry{})
		copy((*c)[i+1:], (*c)[i:])
		(*c)[i] = DVVEntry{Node: node}
	}
	e := &(*c)[i]
	if counter <= e.Base {
		return
	}
	k := 0
	for k < len(e.Dots) && e.Dots[k] <= counter {
		k++
	}
	if k > 0 {
		e.Dots = e.Dots[:copy(e.Dots, e.Dots[k:])]
	}
	e.Base = counter
	e.absorb()
}

// absorb advances Base over any now-contiguous isolated dots.
func (e *DVVEntry) absorb() {
	k := 0
	for k < len(e.Dots) && e.Dots[k] <= e.Base+1 {
		if e.Dots[k] == e.Base+1 {
			e.Base++
		}
		k++
	}
	if k > 0 {
		e.Dots = e.Dots[:copy(e.Dots, e.Dots[k:])]
	}
}

// Union folds every event of o into c (the vector join). It returns true
// when c changed.
func (c *DVV) Union(o DVV) bool {
	changed := false
	for _, oe := range o {
		i := c.find(oe.Node)
		if i < 0 {
			i = sort.Search(len(*c), func(k int) bool { return (*c)[k].Node >= oe.Node })
			*c = append(*c, DVVEntry{})
			copy((*c)[i+1:], (*c)[i:])
			(*c)[i] = DVVEntry{Node: oe.Node}
			changed = true
		}
		e := &(*c)[i]
		if oe.Base > e.Base {
			e.Base = oe.Base
			changed = true
		}
		for _, d := range oe.Dots {
			if d <= e.Base {
				continue
			}
			j := sort.Search(len(e.Dots), func(k int) bool { return e.Dots[k] >= d })
			if j < len(e.Dots) && e.Dots[j] == d {
				continue
			}
			e.Dots = append(e.Dots, 0)
			copy(e.Dots[j+1:], e.Dots[j:])
			e.Dots[j] = d
			changed = true
		}
		e.absorb()
	}
	return changed
}

// MaxCounter returns the largest observed counter for node (0 when none) —
// the seed for a coordinator re-minting dots after a restart.
func (c DVV) MaxCounter(node uint32) uint64 {
	i := c.find(node)
	if i < 0 {
		return 0
	}
	e := &c[i]
	if n := len(e.Dots); n > 0 {
		return e.Dots[n-1]
	}
	return e.Base
}

// Equal reports whether two vectors describe the same observed set.
func (c DVV) Equal(o DVV) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		a, b := &c[i], &o[i]
		if a.Node != b.Node || a.Base != b.Base || len(a.Dots) != len(b.Dots) {
			return false
		}
		for j := range a.Dots {
			if a.Dots[j] != b.Dots[j] {
				return false
			}
		}
	}
	return true
}

// Clone deep-copies the vector.
func (c DVV) Clone() DVV {
	if c == nil {
		return nil
	}
	out := make(DVV, len(c))
	for i, e := range c {
		out[i] = DVVEntry{Node: e.Node, Base: e.Base}
		if e.Dots != nil {
			out[i].Dots = append([]uint64(nil), e.Dots...)
		}
	}
	return out
}

// IsEmpty reports whether nothing has been observed.
func (c DVV) IsEmpty() bool { return len(c) == 0 }

// String renders the vector compactly for logs and test failures.
func (c DVV) String() string {
	s := "{"
	for i, e := range c {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d%v", e.Node, e.Base, e.Dots)
	}
	return s + "}"
}

// --- standalone DVV encoding (causal contexts on the wire) ---

// EncodedDVVSize returns the exact byte length AppendDVV will produce.
func EncodedDVVSize(c DVV) int {
	n := 2
	for _, e := range c {
		n += 4 + 8 + 2 + 8*len(e.Dots)
	}
	return n
}

// AppendDVV appends the binary encoding of c to dst. The empty vector
// encodes to two zero bytes; clients treat it as "no context".
func AppendDVV(dst []byte, c DVV) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c)))
	for _, e := range c {
		dst = binary.LittleEndian.AppendUint32(dst, e.Node)
		dst = binary.LittleEndian.AppendUint64(dst, e.Base)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Dots)))
		for _, d := range e.Dots {
			dst = binary.LittleEndian.AppendUint64(dst, d)
		}
	}
	return dst
}

// EncodeDVV returns the binary encoding of c in a fresh buffer.
func EncodeDVV(c DVV) []byte { return AppendDVV(make([]byte, 0, EncodedDVVSize(c)), c) }

// DecodeDVV parses an encoding produced by AppendDVV. Nil or empty input
// decodes to the empty vector (a blind write's context).
func DecodeDVV(b []byte) (DVV, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := rowDecoder{b: b}
	c, err := decodeDVV(&d)
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing context bytes", ErrCorruptRow, len(d.b)-d.off)
	}
	return c, nil
}

func decodeDVV(d *rowDecoder) (DVV, error) {
	ne, err := d.u16()
	if err != nil {
		return nil, err
	}
	if ne == 0 {
		return nil, nil
	}
	c := make(DVV, 0, ne)
	for i := 0; i < int(ne); i++ {
		var e DVVEntry
		if e.Node, err = d.u32(); err != nil {
			return nil, err
		}
		if e.Base, err = d.u64(); err != nil {
			return nil, err
		}
		nd, err := d.u16()
		if err != nil {
			return nil, err
		}
		if nd > 0 {
			e.Dots = make([]uint64, 0, nd)
			for j := 0; j < int(nd); j++ {
				v, err := d.u64()
				if err != nil {
					return nil, err
				}
				e.Dots = append(e.Dots, v)
			}
		}
		c = append(c, e)
	}
	return c, nil
}
