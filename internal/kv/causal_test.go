package kv

import (
	"fmt"
	"math/rand"
	"testing"
)

func dotted(val string, wall int64, src string, dot Dot, ctx DVV) Versioned {
	return Versioned{
		Value:  []byte(val),
		TS:     Timestamp{Wall: wall, Node: dot.Node},
		Source: src,
		Dot:    dot,
		Ctx:    ctx,
	}
}

// TestLatestSkipsTombstones is the regression for the tombstone-shadowing
// bug: in a write_all row, a newer tombstone from source A must not hide an
// older live value from source B — deletes are per-source there, and the
// read API must keep returning B's data.
func TestLatestSkipsTombstones(t *testing.T) {
	r := &Row{}
	r.ApplyAll(Versioned{Value: []byte("b-data"), TS: Timestamp{Wall: 5}, Source: "B"})
	r.ApplyAll(Versioned{TS: Timestamp{Wall: 10}, Source: "A", Deleted: true})
	v, ok := r.Latest()
	if !ok || string(v.Value) != "b-data" {
		t.Fatalf("Latest = %+v, %v; want B's live value", v, ok)
	}
	// An all-tombstone row reports no live value.
	r2 := &Row{}
	r2.ApplyLatest(Versioned{TS: Timestamp{Wall: 3}, Source: "A", Deleted: true})
	if _, ok := r2.Latest(); ok {
		t.Fatal("Latest returned a tombstone")
	}
}

func TestApplyCausalReplayIsIdempotent(t *testing.T) {
	r := &Row{}
	v := dotted("x", 1, "s1", Dot{Node: 1, Counter: 1}, nil)
	if !r.ApplyCausal(v, true, 0) {
		t.Fatal("first apply rejected")
	}
	if r.ApplyCausal(v, true, 0) {
		t.Fatal("replay applied twice")
	}
	if len(r.Values) != 1 {
		t.Fatalf("values = %d", len(r.Values))
	}
}

func TestApplyCausalContextSupersedes(t *testing.T) {
	r := &Row{}
	a := dotted("old", 1, "s1", Dot{Node: 1, Counter: 1}, nil)
	r.ApplyCausal(a, true, 0)
	var ctx DVV
	ctx.Fold(a.Dot)
	b := dotted("new", 2, "s2", Dot{Node: 2, Counter: 1}, ctx)
	r.ApplyCausal(b, true, 0)
	if len(r.Values) != 1 || string(r.Values[0].Value) != "new" {
		t.Fatalf("ctx-covered value survived: %+v", r.Values)
	}
	if !r.Clock.Covers(a.Dot) {
		t.Fatal("superseded dot left the clock")
	}
}

// TestApplyCausalConcurrentSiblings is the tentpole behavior: two writers
// racing without having seen each other both survive — neither write is
// silently dropped, which is exactly what LWW gets wrong.
func TestApplyCausalConcurrentSiblings(t *testing.T) {
	r := &Row{}
	a := dotted("from-a", 5, "s1", Dot{Node: 1, Counter: 1}, nil)
	b := dotted("from-b", 4, "s2", Dot{Node: 2, Counter: 1}, nil)
	r.ApplyCausal(a, true, 0)
	r.ApplyCausal(b, true, 0)
	if len(r.Values) != 2 {
		t.Fatalf("concurrent sibling dropped: %+v", r.Values)
	}
	if v, ok := r.Latest(); !ok || string(v.Value) != "from-a" {
		t.Fatalf("Latest over siblings = %+v, %v", v, ok)
	}
}

func TestApplyCausalSameSourceProgramOrder(t *testing.T) {
	// Program order rides on the context, not on timestamps: the second op's
	// context covers the first dot (the coordinator fills a blind write's
	// context from its local row clock), so either delivery order leaves one
	// value and identical clocks. Newer-first: the older arrives covered and
	// is dropped as a replay-of-observed. Older-first: the newer's context
	// retires it.
	mk := func() (Versioned, Versioned) {
		o1 := dotted("v1", 1, "s1", Dot{Node: 1, Counter: 1}, nil)
		var ctx DVV
		ctx.Fold(o1.Dot)
		return o1, dotted("v2", 2, "s1", Dot{Node: 1, Counter: 2}, ctx)
	}
	o1, o2 := mk()
	r1 := &Row{}
	r1.ApplyCausal(o1, true, 0)
	r1.ApplyCausal(o2, true, 0)
	p1, p2 := mk()
	r2 := &Row{}
	r2.ApplyCausal(p2, true, 0)
	r2.ApplyCausal(p1, true, 0)
	if !r1.Equal(r2) {
		t.Fatalf("order divergence: %+v vs %+v", r1, r2)
	}
	if len(r1.Values) != 1 || string(r1.Values[0].Value) != "v2" {
		t.Fatalf("program order lost: %+v", r1.Values)
	}

	// Without a context the two ops are concurrent — supersession is never
	// inferred from timestamps, so both survive as siblings.
	q1 := dotted("v1", 1, "s1", Dot{Node: 1, Counter: 1}, nil)
	q2 := dotted("v2", 2, "s1", Dot{Node: 1, Counter: 2}, nil)
	r3 := &Row{}
	r3.ApplyCausal(q1, true, 0)
	r3.ApplyCausal(q2, true, 0)
	if len(r3.Values) != 2 {
		t.Fatalf("context-free ops are concurrent, want 2 siblings: %+v", r3.Values)
	}
}

func TestApplyCausalLegacyBridge(t *testing.T) {
	r := &Row{}
	r.ApplyLatest(Versioned{Value: []byte("legacy"), TS: Timestamp{Wall: 1}, Source: "old"})
	v := dotted("dotted", 2, "s1", Dot{Node: 1, Counter: 1}, nil)
	r.ApplyCausal(v, true, 0)
	if len(r.Values) != 1 || string(r.Values[0].Value) != "dotted" {
		t.Fatalf("dotted write did not supersede older dotless: %+v", r.Values)
	}
}

// TestSiblingCapDeterministic: eviction keeps the cap largest (TS, Dot)
// values regardless of arrival order, bumps the Obs witness, and never
// resurrects evicted dots through Merge.
func TestSiblingCapDeterministic(t *testing.T) {
	const cap = 3
	var ops []Versioned
	for i := 0; i < 8; i++ {
		ops = append(ops, dotted(fmt.Sprintf("v%d", i), int64(i+1), fmt.Sprintf("s%d", i),
			Dot{Node: uint32(i + 1), Counter: 1}, nil))
	}
	rng := rand.New(rand.NewSource(3))
	var first *Row
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(ops))
		r := &Row{}
		for _, i := range perm {
			r.ApplyCausal(ops[i].Clone(), true, cap)
		}
		if len(r.Values) != cap {
			t.Fatalf("trial %d: %d values, want %d", trial, len(r.Values), cap)
		}
		if r.Obs != uint32(len(ops)-cap) {
			t.Fatalf("trial %d: obs = %d, want %d", trial, r.Obs, len(ops)-cap)
		}
		if first == nil {
			first = r
		} else if !r.Equal(first) {
			t.Fatalf("trial %d: eviction not deterministic:\n%+v\n%+v", trial, r, first)
		}
	}
	// The survivors are the freshest ops, and every evicted dot stays
	// covered so a merge from a laggard cannot resurrect it.
	for i, op := range ops {
		if !first.Clock.Covers(op.Dot) {
			t.Fatalf("dot %v not covered", op.Dot)
		}
		held := first.holdsDot(op.Dot)
		if want := i >= len(ops)-cap; held != want {
			t.Fatalf("op %d held=%v want %v", i, held, want)
		}
	}
	laggard := &Row{}
	laggard.ApplyCausal(ops[0].Clone(), true, cap)
	merged := first.Clone()
	if merged.Merge(laggard) {
		t.Fatal("merge resurrected an evicted sibling")
	}
}

// genHistory simulates a causally plausible op stream: writers mint dots in
// program order, draw contexts from replica clocks, and replicas exchange
// state — so every context that covers a dot also covers that op's context.
func genHistory(rng *rand.Rand, nops int, dottedOnly bool) ([]Versioned, []*Row) {
	reps := []*Row{{}, {}, {}}
	seq := map[uint32]uint64{}
	var wall int64
	var ops []Versioned
	for len(ops) < nops {
		if rng.Intn(4) == 0 {
			reps[rng.Intn(len(reps))].Merge(reps[rng.Intn(len(reps))])
		}
		w := uint32(rng.Intn(4) + 1)
		ri := rng.Intn(len(reps))
		wall++
		v := Versioned{
			Value:   []byte(fmt.Sprintf("w%d-%d", w, wall)),
			TS:      Timestamp{Wall: wall, Node: w},
			Source:  fmt.Sprintf("s%d", w),
			Deleted: rng.Intn(10) == 0,
		}
		if dottedOnly || rng.Intn(5) > 0 {
			seq[w]++
			v.Dot = Dot{Node: w, Counter: seq[w]}
			if rng.Intn(3) > 0 {
				v.Ctx = reps[ri].Clock.Clone()
			}
		}
		ops = append(ops, v)
		reps[ri].ApplyCausal(v.Clone(), true, 0)
	}
	return ops, reps
}

// TestMergeLaws: Merge is commutative, associative and idempotent over rows
// from plausible histories — the convergence contract behind read repair,
// hints and anti-entropy.
func TestMergeLaws(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, reps := genHistory(rng, 14, false)
		a, b, c := reps[0], reps[1], reps[2]

		self := a.Clone()
		if self.Merge(a.Clone()) {
			t.Fatalf("seed %d: self-merge changed the row", seed)
		}

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			t.Fatalf("seed %d: merge not commutative:\n%+v\n%+v", seed, ab, ba)
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			t.Fatalf("seed %d: merge not associative:\n%+v\n%+v", seed, abc1, abc2)
		}

		again := abc1.Clone()
		if again.Merge(ab) || again.Merge(c) {
			t.Fatalf("seed %d: merge not idempotent", seed)
		}
	}
}

// TestDottedApplyOrderConvergence: replicas that apply the same dotted ops
// in any order reach Equal rows without anti-entropy — no write is silently
// lost to delivery reordering.
func TestDottedApplyOrderConvergence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		ops, _ := genHistory(rng, 12, true)
		var first *Row
		for trial := 0; trial < 6; trial++ {
			r := &Row{}
			for _, i := range rng.Perm(len(ops)) {
				r.ApplyCausal(ops[i].Clone(), true, 0)
			}
			if first == nil {
				first = r
				// The last-minted op is in no context, so it must survive.
				last := ops[len(ops)-1]
				if !r.holdsDot(last.Dot) {
					t.Fatalf("seed %d: newest op silently lost", seed)
				}
				continue
			}
			if !r.Equal(first) {
				t.Fatalf("seed %d trial %d: apply-order divergence:\n%+v\n%+v", seed, trial, r, first)
			}
		}
	}
}

// TestMergeConvergesLegacyMix: with legacy dotless ops in the stream the
// per-replica apply order may leave different rows (that is the LWW bug),
// but one round of pairwise merges must still converge everything.
func TestMergeConvergesLegacyMix(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		ops, _ := genHistory(rng, 14, false)
		rows := make([]*Row, 3)
		for i := range rows {
			rows[i] = &Row{}
			for _, j := range rng.Perm(len(ops)) {
				rows[i].ApplyCausal(ops[j].Clone(), true, 0)
			}
		}
		merged := &Row{}
		for _, r := range rows {
			merged.Merge(r)
		}
		for i, r := range rows {
			r.Merge(merged)
			if !r.Equal(merged) {
				t.Fatalf("seed %d: replica %d did not converge:\n%+v\n%+v", seed, i, r, merged)
			}
		}
	}
}

// TestRowCodecVersions: dotless rows still encode as version 1 (so pre-DVV
// decoders accept them), causal rows round-trip through version 2, and both
// decode paths agree with DecodeRowClock.
func TestRowCodecVersions(t *testing.T) {
	legacy := &Row{}
	legacy.ApplyAll(Versioned{Value: []byte("old"), TS: Timestamp{Wall: 1}, Source: "a"})
	legacy.ApplyAll(Versioned{Value: []byte("older"), TS: Timestamp{Wall: 2}, Source: "b"})
	blob := EncodeRow(legacy)
	if blob[0] != rowFormatV1 {
		t.Fatalf("dotless row encoded as version %d", blob[0])
	}
	got, err := DecodeRow(blob)
	if err != nil || !got.Equal(legacy) {
		t.Fatalf("v1 roundtrip: %v, %+v", err, got)
	}
	if c, err := DecodeRowClock(blob); err != nil || c != nil {
		t.Fatalf("v1 clock = %v, %v", c, err)
	}

	causal := &Row{}
	causal.ApplyCausal(dotted("x", 3, "s1", Dot{Node: 1, Counter: 1}, nil), true, 0)
	causal.ApplyCausal(dotted("y", 4, "s2", Dot{Node: 2, Counter: 5}, nil), true, 0)
	causal.Obs = 7
	blob2 := EncodeRow(causal)
	if blob2[0] != rowFormatV2 {
		t.Fatalf("causal row encoded as version %d", blob2[0])
	}
	if len(blob2) != EncodedRowSize(causal) {
		t.Fatalf("size mismatch: %d != %d", len(blob2), EncodedRowSize(causal))
	}
	got2, err := DecodeRow(blob2)
	if err != nil || !got2.Equal(causal) {
		t.Fatalf("v2 roundtrip: %v, %+v", err, got2)
	}
	c2, err := DecodeRowClock(blob2)
	if err != nil || !c2.Equal(causal.Clock) {
		t.Fatalf("v2 clock = %v, %v", c2, err)
	}

	// A mixed-era store: decoding a v1 blob into a row that previously held
	// causal state must fully reset that state.
	reused := causal.Clone()
	if err := DecodeRowInto(reused, blob); err != nil {
		t.Fatal(err)
	}
	if !reused.Equal(legacy) {
		t.Fatalf("v1 decode into causal row left stale state: %+v", reused)
	}
}

// TestRowFromWriteHintSupersedes: the row hinted for one undelivered dotted
// write must perform the same supersession at the destination that
// ApplyCausal would have.
func TestRowFromWriteHintSupersedes(t *testing.T) {
	dst := &Row{}
	a := dotted("seen", 1, "s1", Dot{Node: 1, Counter: 1}, nil)
	dst.ApplyCausal(a.Clone(), true, 0)
	var ctx DVV
	ctx.Fold(a.Dot)
	w := dotted("overwrite", 2, "s2", Dot{Node: 2, Counter: 1}, ctx)

	hint := RowFromWrite(w, true)
	dst.Merge(hint)
	if len(dst.Values) != 1 || string(dst.Values[0].Value) != "overwrite" {
		t.Fatalf("hint delivery diverged from ApplyCausal: %+v", dst.Values)
	}

	// A concurrent value at the destination survives the same delivery.
	dst2 := &Row{}
	dst2.ApplyCausal(dotted("concurrent", 5, "s3", Dot{Node: 3, Counter: 1}, nil), true, 0)
	dst2.Merge(RowFromWrite(w, true))
	if len(dst2.Values) != 2 {
		t.Fatalf("hint delivery dropped a concurrent sibling: %+v", dst2.Values)
	}

	// write_all: apply-side supersession is scoped to the writer's source,
	// but Merge's covered-and-absent rule is not — so an all-mode hint must
	// not carry the context in its clock, or it would discard another
	// source's live value the writer merely observed.
	dst3 := &Row{}
	dst3.ApplyCausal(a.Clone(), true, 0) // s1's live value, dot in w's ctx
	dst3.Merge(RowFromWrite(w, false))
	if len(dst3.Values) != 2 {
		t.Fatalf("all-mode hint discarded another source's value: %+v", dst3.Values)
	}
}
