// Package heal implements Sedna's failure-healing pipeline: the write-path
// half of §III-C's "asynchronous replica re-duplication after failure".
//
// Every replica write or repair that fails is captured as a hint — the
// (node, key, row) triple that should have landed — in a bounded per-node
// queue. A background replayer drains a node's queue once the node answers
// again, pacing its probes with jittered exponential backoff while the node
// stays dark. Because replay pushes the row through the replica repair
// (a CRDT merge), re-delivery is idempotent and ordering-insensitive, so the
// cluster converges from the write path alone — no client read required.
//
// The companion Sweeper provides the low-rate anti-entropy pass: vnodes
// whose ownership changed after a confirmed death are marked dirty and
// re-merged to every owner, one vnode at a time, so replicas that missed
// updates during the failure window converge even when no hint survived.
package heal

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
)

// ReplayFunc delivers one hint: it merges row into node's copy of key.
// Implementations are typically the quorum transport's RepairReplica.
type ReplayFunc func(ctx context.Context, node ring.NodeID, key kv.Key, row *kv.Row) error

// Config parameterises a Healer.
type Config struct {
	// Replay delivers one hint to its destination. Required.
	Replay ReplayFunc
	// QueueCapacity bounds each per-node queue; when full the oldest hint
	// is dropped and counted. Zero selects 1024.
	QueueCapacity int
	// BaseBackoff is the delay after the first failed replay to a node;
	// zero selects 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; zero selects 5s.
	MaxBackoff time.Duration
	// ReplayTimeout bounds one replay delivery; zero selects 500ms.
	ReplayTimeout time.Duration
	// Seed fixes the backoff jitter; zero selects 1 (deterministic tests).
	Seed int64
	// Obs receives the heal.* metrics; nil disables.
	Obs *obs.Registry
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// hint is one pending delivery; hints for the same (node, key) coalesce by
// merging rows, so a queue holds at most one entry per key. gen counts the
// in-place coalesces: a replay that started at one generation must not
// retire the hint if the generation moved while the delivery was in flight,
// because the row now carries data the delivery never shipped.
type hint struct {
	key kv.Key
	row *kv.Row
	gen uint64
}

// nodeQueue is the bounded per-node hint queue plus its replay backoff
// state. Guarded by the Healer's mutex.
type nodeQueue struct {
	order   []*hint          // FIFO
	byKey   map[kv.Key]*hint // coalescing index
	dropped uint64           // hints evicted by overflow
	backoff time.Duration    // current replay backoff (0 = try now)
	nextTry time.Time        // earliest next replay attempt
}

// Healer owns the hint queues and the background replayer.
type Healer struct {
	cfg Config

	mu     sync.Mutex
	queues map[ring.NodeID]*nodeQueue
	rng    *rand.Rand

	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool // guarded by mu

	nEnqueued, nDropped  *obs.Counter
	nReplayed, nFailures *obs.Counter
	gPending             *obs.Gauge
}

// New validates cfg and returns a stopped Healer; call Start to launch the
// replayer.
func New(cfg Config) (*Healer, error) {
	if cfg.Replay == nil {
		return nil, errors.New("heal: Replay required")
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.ReplayTimeout <= 0 {
		cfg.ReplayTimeout = 500 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Healer{
		cfg:       cfg,
		queues:    map[ring.NodeID]*nodeQueue{},
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		nEnqueued: cfg.Obs.Counter("heal.hints_enqueued"),
		nDropped:  cfg.Obs.Counter("heal.hints_dropped"),
		nReplayed: cfg.Obs.Counter("heal.hints_replayed"),
		nFailures: cfg.Obs.Counter("heal.replay_failures"),
		gPending:  cfg.Obs.Gauge("heal.hints_pending"),
	}, nil
}

func (h *Healer) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf("heal: "+format, args...)
	}
}

// Start launches the replayer goroutine. Hints enqueued before Start are
// kept and drain once it runs.
func (h *Healer) Start() {
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	go h.replayLoop()
}

// Close stops the replayer; pending hints are discarded. Safe on a Healer
// that was never started.
func (h *Healer) Close() {
	h.once.Do(func() { close(h.stop) })
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if started {
		<-h.done
	}
}

// Enqueue records that row failed to reach node's copy of key. Hints for
// the same (node, key) merge; when the node's queue is full the oldest hint
// is dropped and counted (heal.hints_dropped), keeping memory bounded while
// the anti-entropy sweep covers what was lost.
func (h *Healer) Enqueue(node ring.NodeID, key kv.Key, row *kv.Row) {
	if row == nil {
		return
	}
	h.mu.Lock()
	q := h.queues[node]
	if q == nil {
		q = &nodeQueue{byKey: map[kv.Key]*hint{}}
		h.queues[node] = q
	}
	if existing := q.byKey[key]; existing != nil {
		if existing.row.Merge(row) {
			existing.gen++
		}
		h.mu.Unlock()
		h.nEnqueued.Inc()
		return
	}
	if len(q.order) >= h.cfg.QueueCapacity {
		oldest := q.order[0]
		q.order = q.order[1:]
		delete(q.byKey, oldest.key)
		q.dropped++
		h.nDropped.Inc()
		h.gPending.Add(-1)
	}
	hn := &hint{key: key, row: row.Clone()}
	q.order = append(q.order, hn)
	q.byKey[key] = hn
	h.mu.Unlock()
	h.nEnqueued.Inc()
	h.gPending.Add(1)
	h.wake()
}

// NotifyAlive resets node's replay backoff — typically called when the
// node's circuit breaker closes — so queued hints drain immediately.
func (h *Healer) NotifyAlive(node ring.NodeID) {
	h.mu.Lock()
	if q := h.queues[node]; q != nil {
		q.backoff = 0
		q.nextTry = time.Time{}
	}
	h.mu.Unlock()
	h.wake()
}

// Pending returns the total hints queued across all nodes.
func (h *Healer) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, q := range h.queues {
		n += len(q.order)
	}
	return n
}

// PendingFor returns the hints queued for one node.
func (h *Healer) PendingFor(node ring.NodeID) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if q := h.queues[node]; q != nil {
		return len(q.order)
	}
	return 0
}

// Dropped returns the total hints evicted by queue overflow.
func (h *Healer) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, q := range h.queues {
		n += q.dropped
	}
	return n
}

func (h *Healer) wake() {
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// replayLoop waits until some queue is due, then drains it until the node
// fails again.
func (h *Healer) replayLoop() {
	defer close(h.done)
	for {
		node, wait, ok := h.nextDue()
		if !ok {
			// Nothing queued: sleep until a hint arrives.
			select {
			case <-h.stop:
				return
			case <-h.kick:
			}
			continue
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-h.stop:
				t.Stop()
				return
			case <-h.kick:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		h.drain(node)
		select {
		case <-h.stop:
			return
		default:
		}
	}
}

// nextDue picks the queue with the earliest nextTry. ok is false when every
// queue is empty.
func (h *Healer) nextDue() (node ring.NodeID, wait time.Duration, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var best ring.NodeID
	var bestAt time.Time
	found := false
	for n, q := range h.queues {
		if len(q.order) == 0 {
			continue
		}
		if !found || q.nextTry.Before(bestAt) {
			best, bestAt, found = n, q.nextTry, true
		}
	}
	if !found {
		return "", 0, false
	}
	return best, time.Until(bestAt), true
}

// drain replays node's hints in FIFO order until the queue empties or a
// delivery fails (which schedules the next attempt with jittered backoff).
func (h *Healer) drain(node ring.NodeID) {
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		h.mu.Lock()
		q := h.queues[node]
		if q == nil || len(q.order) == 0 {
			h.mu.Unlock()
			return
		}
		head := q.order[0]
		gen := head.gen
		row := head.row.Clone()
		h.mu.Unlock()

		ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ReplayTimeout)
		err := h.cfg.Replay(ctx, node, head.key, row)
		cancel()

		h.mu.Lock()
		if err != nil {
			h.nFailures.Inc()
			if q.backoff <= 0 {
				q.backoff = h.cfg.BaseBackoff
			} else {
				q.backoff *= 2
				if q.backoff > h.cfg.MaxBackoff {
					q.backoff = h.cfg.MaxBackoff
				}
			}
			// Jitter in [backoff, 1.5*backoff) de-synchronises the
			// cluster's replayers when a node comes back.
			jitter := time.Duration(h.rng.Int63n(int64(q.backoff)/2 + 1))
			q.nextTry = time.Now().Add(q.backoff + jitter)
			h.mu.Unlock()
			h.logf("replay to %s failed (%d pending): %v", node, len(q.order), err)
			return
		}
		// Success: remove the hint only if it was not coalesced with newer
		// data while the delivery was in flight. Coalescing merges into the
		// SAME hint object, so object identity cannot detect it — the
		// generation counter can: a moved generation means the queue entry
		// now carries more than we delivered, so keep it for another round.
		if q.byKey[head.key] == head && head.gen == gen && len(q.order) > 0 && q.order[0] == head {
			q.order = q.order[1:]
			delete(q.byKey, head.key)
			h.gPending.Add(-1)
		}
		q.backoff = 0
		q.nextTry = time.Time{}
		h.mu.Unlock()
		h.nReplayed.Inc()
	}
}
