package heal

import (
	"errors"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/ring"
)

// ErrOwnershipChanged is the sentinel a Sweep func returns when it detects
// that the vnode's ownership epoch moved mid-sweep (a migration cutover or
// eviction landed while rows were being re-merged). The sweeper re-queues
// the vnode — the rest of the sweep would repair against a stale owner set —
// without counting the round as an error.
var ErrOwnershipChanged = errors.New("heal: vnode ownership changed mid-sweep")

// SweepConfig parameterises a Sweeper.
type SweepConfig struct {
	// Sweep re-merges one vnode to its current owners. Required. A non-nil
	// error re-queues the vnode for the next tick; ErrOwnershipChanged
	// re-queues without counting an error (the vnode moved mid-sweep and
	// must be retried against the new owner set).
	Sweep func(v ring.VNodeID) error
	// Every paces the sweep: one vnode per tick, so anti-entropy stays a
	// low-rate background activity. Zero selects 250ms.
	Every time.Duration
	// Obs receives the heal.sweep* metrics; nil disables.
	Obs *obs.Registry
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Sweeper runs the low-rate anti-entropy pass: vnodes marked dirty after a
// confirmed death are re-merged to their owners one per tick. Dirty marks
// deduplicate, so the backlog is bounded by the ring's vnode count.
type Sweeper struct {
	cfg SweepConfig

	mu    sync.Mutex
	dirty map[ring.VNodeID]struct{}
	queue []ring.VNodeID

	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool // guarded by mu

	nSweeps, nErrors *obs.Counter
	nRescheduled     *obs.Counter
	gBacklog         *obs.Gauge
}

// NewSweeper validates cfg and returns a stopped Sweeper; call Start to
// launch the sweep loop.
func NewSweeper(cfg SweepConfig) (*Sweeper, error) {
	if cfg.Sweep == nil {
		return nil, errors.New("heal: Sweep required")
	}
	if cfg.Every <= 0 {
		cfg.Every = 250 * time.Millisecond
	}
	return &Sweeper{
		cfg:          cfg,
		dirty:        map[ring.VNodeID]struct{}{},
		kick:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		nSweeps:      cfg.Obs.Counter("heal.sweeps"),
		nErrors:      cfg.Obs.Counter("heal.sweep_errors"),
		nRescheduled: cfg.Obs.Counter("heal.sweep_rescheduled"),
		gBacklog:     cfg.Obs.Gauge("heal.sweep_backlog"),
	}, nil
}

func (s *Sweeper) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("heal: "+format, args...)
	}
}

// Start launches the sweep loop. Marks made before Start are kept.
func (s *Sweeper) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Close stops the sweep loop; unswept vnodes are discarded. Safe on a
// Sweeper that was never started.
func (s *Sweeper) Close() {
	s.once.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// MarkDirty queues vnodes for re-merging. Marks for an already-queued vnode
// are no-ops.
func (s *Sweeper) MarkDirty(vnodes ...ring.VNodeID) {
	s.mu.Lock()
	added := 0
	for _, v := range vnodes {
		if _, ok := s.dirty[v]; ok {
			continue
		}
		s.dirty[v] = struct{}{}
		s.queue = append(s.queue, v)
		added++
	}
	s.mu.Unlock()
	if added > 0 {
		s.gBacklog.Add(int64(added))
		s.wake()
	}
}

// Backlog returns the number of vnodes awaiting a sweep.
func (s *Sweeper) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

func (s *Sweeper) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Sweeper) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-t.C:
		}
		s.sweepOne()
	}
}

// sweepOne pops the oldest dirty vnode and re-merges it; on error the vnode
// goes to the back of the queue for a later tick.
func (s *Sweeper) sweepOne() {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return
	}
	v := s.queue[0]
	s.queue = s.queue[1:]
	s.mu.Unlock()

	err := s.cfg.Sweep(v)

	s.mu.Lock()
	if err != nil {
		s.queue = append(s.queue, v)
		s.mu.Unlock()
		if errors.Is(err, ErrOwnershipChanged) {
			// Not a failure: the vnode moved while we were sweeping it. A
			// later round repairs against the new owner set.
			s.nRescheduled.Inc()
			s.logf("sweep of vnode %d rescheduled: ownership changed mid-sweep", v)
			return
		}
		s.nErrors.Inc()
		s.logf("sweep of vnode %d failed: %v", v, err)
		return
	}
	delete(s.dirty, v)
	s.mu.Unlock()
	s.nSweeps.Inc()
	s.gBacklog.Add(-1)
}
