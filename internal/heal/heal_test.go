package heal

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
)

func row(val string, wall int64, src string) *kv.Row {
	return &kv.Row{Values: []kv.Versioned{{
		Value:  []byte(val),
		TS:     kv.Timestamp{Wall: wall, Node: 1},
		Source: src,
	}}}
}

// sink records replayed hints and can be told to fail.
type sink struct {
	mu      sync.Mutex
	failing bool
	got     map[string][]string // node -> values in delivery order
	calls   int
}

func newSink() *sink { return &sink{got: map[string][]string{}} }

func (s *sink) replay(ctx context.Context, node ring.NodeID, key kv.Key, r *kv.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.failing {
		return errors.New("down")
	}
	if v, ok := r.LatestAny(); ok {
		s.got[string(node)] = append(s.got[string(node)], string(v.Value))
	}
	return nil
}

func (s *sink) setFailing(f bool) {
	s.mu.Lock()
	s.failing = f
	s.mu.Unlock()
}

func (s *sink) values(node string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.got[node]...)
}

func (s *sink) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealerReplaysHints(t *testing.T) {
	sk := newSink()
	reg := obs.NewRegistry()
	h, err := New(Config{Replay: sk.replay, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Close()

	h.Enqueue("node-a", kv.Key("k1"), row("v1", 10, "s1"))
	h.Enqueue("node-b", kv.Key("k2"), row("v2", 11, "s1"))
	waitFor(t, 5*time.Second, func() bool { return h.Pending() == 0 }, "hints not drained")
	if got := sk.values("node-a"); len(got) != 1 || got[0] != "v1" {
		t.Fatalf("node-a got %v, want [v1]", got)
	}
	if got := sk.values("node-b"); len(got) != 1 || got[0] != "v2" {
		t.Fatalf("node-b got %v, want [v2]", got)
	}
	snap := reg.Snapshot()
	if snap.Counter("heal.hints_replayed") != 2 {
		t.Fatalf("hints_replayed = %d, want 2", snap.Counter("heal.hints_replayed"))
	}
	if snap.Gauge("heal.hints_pending") != 0 {
		t.Fatalf("hints_pending gauge = %d, want 0", snap.Gauge("heal.hints_pending"))
	}
}

func TestHealerCoalescesByKey(t *testing.T) {
	sk := newSink()
	sk.setFailing(true)
	h, err := New(Config{Replay: sk.replay, BaseBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Close()

	// Two hints for the same (node, key) merge into one queue entry holding
	// the newer value.
	h.Enqueue("node-a", kv.Key("k1"), row("old", 10, "s1"))
	h.Enqueue("node-a", kv.Key("k1"), row("new", 20, "s1"))
	if got := h.PendingFor("node-a"); got != 1 {
		t.Fatalf("pending = %d, want 1 (coalesced)", got)
	}
	sk.setFailing(false)
	h.NotifyAlive("node-a")
	waitFor(t, 5*time.Second, func() bool { return h.Pending() == 0 }, "hint not drained")
	if got := sk.values("node-a"); len(got) != 1 || got[0] != "new" {
		t.Fatalf("delivered %v, want the merged row's latest [new]", got)
	}
}

func TestHealerOverflowDropsOldest(t *testing.T) {
	sk := newSink()
	sk.setFailing(true)
	reg := obs.NewRegistry()
	h, err := New(Config{
		Replay:        sk.replay,
		QueueCapacity: 4,
		BaseBackoff:   10 * time.Millisecond,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Close()

	keys := []string{"k1", "k2", "k3", "k4", "k5", "k6"}
	for i, k := range keys {
		h.Enqueue("node-a", kv.Key(k), row("v", int64(10+i), "s1"))
	}
	if got := h.PendingFor("node-a"); got != 4 {
		t.Fatalf("pending = %d, want capacity 4", got)
	}
	if got := h.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := reg.Snapshot().Counter("heal.hints_dropped"); got != 2 {
		t.Fatalf("hints_dropped counter = %d, want 2", got)
	}

	// The survivors are the four NEWEST keys, in order.
	sk.setFailing(false)
	h.NotifyAlive("node-a")
	waitFor(t, 5*time.Second, func() bool { return h.Pending() == 0 }, "hints not drained")
	if got := sk.values("node-a"); len(got) != 4 {
		t.Fatalf("delivered %d hints, want the 4 surviving newest", len(got))
	}
	if g := reg.Snapshot().Gauge("heal.hints_pending"); g != 0 {
		t.Fatalf("hints_pending gauge = %d, want 0", g)
	}
}

func TestHealerBacksOffWhileNodeDark(t *testing.T) {
	sk := newSink()
	sk.setFailing(true)
	h, err := New(Config{
		Replay:      sk.replay,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Close()

	h.Enqueue("node-a", kv.Key("k1"), row("v1", 10, "s1"))
	// Let a few backoff cycles elapse; the replayer must probe more than
	// once but far fewer times than a tight loop would.
	time.Sleep(250 * time.Millisecond)
	probes := sk.callCount()
	if probes < 2 {
		t.Fatalf("replayer never retried (calls = %d)", probes)
	}
	if probes > 12 {
		t.Fatalf("replayer is not backing off (calls = %d in 250ms)", probes)
	}
	// Node recovers: NotifyAlive short-circuits the backoff.
	sk.setFailing(false)
	h.NotifyAlive("node-a")
	waitFor(t, 5*time.Second, func() bool { return h.Pending() == 0 }, "hint not drained after recovery")
}

func TestSweeperDedupsAndRetries(t *testing.T) {
	var mu sync.Mutex
	swept := []ring.VNodeID{}
	fail := map[ring.VNodeID]int{7: 1} // vnode 7 fails once then succeeds
	reg := obs.NewRegistry()
	s, err := NewSweeper(SweepConfig{
		Every: 10 * time.Millisecond,
		Obs:   reg,
		Sweep: func(v ring.VNodeID) error {
			mu.Lock()
			defer mu.Unlock()
			if fail[v] > 0 {
				fail[v]--
				return errors.New("transient")
			}
			swept = append(swept, v)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	s.MarkDirty(3, 7, 3, 3) // duplicate marks collapse
	waitFor(t, 5*time.Second, func() bool { return s.Backlog() == 0 }, "backlog not drained")
	mu.Lock()
	defer mu.Unlock()
	if len(swept) != 2 {
		t.Fatalf("swept %v, want exactly vnodes 3 and 7 once each", swept)
	}
	seen := map[ring.VNodeID]bool{}
	for _, v := range swept {
		seen[v] = true
	}
	if !seen[3] || !seen[7] {
		t.Fatalf("swept %v, want {3, 7}", swept)
	}
	snap := reg.Snapshot()
	if snap.Counter("heal.sweeps") != 2 {
		t.Fatalf("sweeps = %d, want 2", snap.Counter("heal.sweeps"))
	}
	if snap.Counter("heal.sweep_errors") != 1 {
		t.Fatalf("sweep_errors = %d, want 1", snap.Counter("heal.sweep_errors"))
	}
	if snap.Gauge("heal.sweep_backlog") != 0 {
		t.Fatalf("sweep_backlog gauge = %d, want 0", snap.Gauge("heal.sweep_backlog"))
	}
}

func TestSweeperReschedulesOnOwnershipChange(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	reg := obs.NewRegistry()
	s, err := NewSweeper(SweepConfig{
		Every: 10 * time.Millisecond,
		Obs:   reg,
		Sweep: func(v ring.VNodeID) error {
			mu.Lock()
			defer mu.Unlock()
			attempts++
			// The vnode's ownership epoch moves under the first two sweep
			// attempts (a migration cutover landing mid-sweep); the third
			// runs against a stable owner set.
			if attempts <= 2 {
				return ErrOwnershipChanged
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	s.MarkDirty(9)
	waitFor(t, 5*time.Second, func() bool { return s.Backlog() == 0 }, "backlog not drained")
	snap := reg.Snapshot()
	if snap.Counter("heal.sweep_rescheduled") != 2 {
		t.Fatalf("sweep_rescheduled = %d, want 2", snap.Counter("heal.sweep_rescheduled"))
	}
	if snap.Counter("heal.sweep_errors") != 0 {
		t.Fatalf("sweep_errors = %d, want 0: an ownership change is not a failure", snap.Counter("heal.sweep_errors"))
	}
	if snap.Counter("heal.sweeps") != 1 {
		t.Fatalf("sweeps = %d, want 1", snap.Counter("heal.sweeps"))
	}
}

// TestHealerCoalesceDuringFlightNotLost is the regression for the silent
// lost-hint bug: a hint coalesced INTO while its older snapshot is being
// delivered must survive the delivery's success. The retire check used to
// compare queue-entry identity — but coalescing merges in place, so identity
// never changes and the merged-in data was retired unreplayed.
func TestHealerCoalesceDuringFlightNotLost(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var delivered []string
	first := true
	replay := func(ctx context.Context, node ring.NodeID, key kv.Key, r *kv.Row) error {
		if first {
			first = false
			close(inFlight)
			<-release // hold the delivery open while a newer hint coalesces in
		}
		mu.Lock()
		if v, ok := r.LatestAny(); ok {
			delivered = append(delivered, string(v.Value))
		}
		mu.Unlock()
		return nil
	}
	h, err := New(Config{Replay: replay, BaseBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	defer h.Close()

	h.Enqueue("node-a", kv.Key("k1"), row("old", 10, "s1"))
	<-inFlight
	h.Enqueue("node-a", kv.Key("k1"), row("new", 20, "s1"))
	close(release)

	waitFor(t, 5*time.Second, func() bool { return h.Pending() == 0 }, "hints not drained")
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) == 0 || delivered[len(delivered)-1] != "new" {
		t.Fatalf("delivered %v; the coalesced-in newer value was silently retired", delivered)
	}
}
