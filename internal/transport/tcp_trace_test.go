package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// frameRoundTrip writes one frame into a pipe and reads it back.
func frameRoundTrip(t *testing.T, ext, body []byte) (byte, []byte, []byte) {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- writeFrame(c1, 7, 0x0301, kindRequest, ext, body) }()
	id, op, kind, gotExt, gotBody, err := readFrame(c2)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if werr := <-errCh; werr != nil {
		t.Fatalf("writeFrame: %v", werr)
	}
	if id != 7 || op != 0x0301 {
		t.Fatalf("header mismatch: id=%d op=%#x", id, op)
	}
	return kind, gotExt, gotBody
}

// TestFrameExtensionRoundTrip checks the trace-context extension block
// survives framing: the receiver sees the masked kind, the ext bytes and
// the untouched body.
func TestFrameExtensionRoundTrip(t *testing.T) {
	ext := []byte{1, 0xde, 0xad, 0xbe, 0xef}
	body := []byte("payload")
	kind, gotExt, gotBody := frameRoundTrip(t, ext, body)
	if kind != kindRequest {
		t.Fatalf("kind = %d, want masked kindRequest", kind)
	}
	if !bytes.Equal(gotExt, ext) {
		t.Fatalf("ext = %x, want %x", gotExt, ext)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatalf("body = %q, want %q", gotBody, body)
	}
}

// TestFrameWithoutExtension checks the pre-extension wire format is still
// produced (no flag bit, no length prefix) when no trace is attached — old
// peers keep parsing frames from new senders.
func TestFrameWithoutExtension(t *testing.T) {
	kind, gotExt, gotBody := frameRoundTrip(t, nil, []byte("plain"))
	if kind != kindRequest {
		t.Fatalf("kind = %d", kind)
	}
	if gotExt != nil {
		t.Fatalf("unexpected ext %x", gotExt)
	}
	if string(gotBody) != "plain" {
		t.Fatalf("body = %q", gotBody)
	}
}

// TestFrameOversizedExtensionDropped checks an ext beyond maxExt is silently
// dropped rather than corrupting the stream: the trace is advisory, the
// request is not.
func TestFrameOversizedExtensionDropped(t *testing.T) {
	kind, gotExt, gotBody := frameRoundTrip(t, make([]byte, maxExt+1), []byte("kept"))
	if kind != kindRequest {
		t.Fatalf("kind = %d (flag must not be set when the ext is dropped)", kind)
	}
	if gotExt != nil {
		t.Fatalf("oversized ext delivered: %d bytes", len(gotExt))
	}
	if string(gotBody) != "kept" {
		t.Fatalf("body = %q", gotBody)
	}
}

// TestFrameBadExtensionLength hand-crafts a frame whose flag claims an
// extension longer than the frame and checks the reader rejects it instead
// of mis-slicing the body.
func TestFrameBadExtensionLength(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	frame := make([]byte, 4+frameHeaderLen+4)
	binary.LittleEndian.PutUint32(frame, uint32(frameHeaderLen+4))
	binary.LittleEndian.PutUint64(frame[4:], 1)
	binary.LittleEndian.PutUint16(frame[12:], 0x01)
	frame[14] = kindRequest | kindExtFlag
	binary.LittleEndian.PutUint32(frame[15:], 9999)
	go c1.Write(frame)
	if _, _, _, _, _, err := readFrame(c2); err == nil {
		t.Fatal("readFrame accepted an extension longer than the frame")
	}
}

// TestTCPTraceDelivery runs the extension end to end over real sockets: a
// request's Trace bytes reach the handler's Message, and responses carry
// none back.
func TestTCPTraceDelivery(t *testing.T) {
	srv := NewTCP("127.0.0.1:0")
	got := make(chan []byte, 2)
	if err := srv.Serve(func(ctx context.Context, from string, m Message) (Message, error) {
		got <- append([]byte(nil), m.Trace...)
		return Message{Op: m.Op, Body: m.Body}, nil
	}); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewTCP("")
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	trace := []byte{1, 9, 9, 9}
	resp, err := cli.Call(ctx, srv.Addr(), Message{Op: 9, Body: []byte("b"), Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "b" || resp.Trace != nil {
		t.Fatalf("resp = %+v (responses must not carry a trace)", resp)
	}
	if ext := <-got; !bytes.Equal(ext, trace) {
		t.Fatalf("handler saw ext %x, want %x", ext, trace)
	}

	// Untraced requests still deliver, with no ext at all.
	if _, err := cli.Call(ctx, srv.Addr(), Message{Op: 9, Body: []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if ext := <-got; len(ext) != 0 {
		t.Fatalf("untraced call delivered ext %x", ext)
	}
}
