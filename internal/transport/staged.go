package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"
)

// The staged server is a SEDA-style pipeline (DTranx): instead of one
// reader goroutine per connection plus one goroutine per in-flight request,
// traffic flows through four explicitly-bounded stages —
//
//	accept shards ─▶ reader shards ─▶ dispatch queue ─▶ worker pool
//	                 (event loops)     (bounded chan)     │
//	          per-connection writers ◀────────────────────┘
//	          (bounded queue each)
//
// Connections are multiplexed onto a fixed pool of event-loop reader shards
// (epoll on Linux; a per-connection blocking reader elsewhere), decoded
// requests pass through one bounded dispatch queue into a fixed worker
// pool, and responses are written by a per-connection writer goroutine that
// preserves the pipelined out-of-order response multiplexing by request id.
// Every stage has a queue bound and an overload policy:
//
//	accept   — MaxConns; beyond it, new connections are closed on arrival.
//	read     — maxFrame bounds per-connection buffered bytes; a malformed
//	           length kills only that connection.
//	dispatch — DispatchDepth; when full the reader answers the request
//	           immediately with a kindBusy frame (ErrOverloaded at the
//	           caller) instead of queueing or spawning — saturation
//	           degrades into fast retryable pushback.
//	write    — WriteDepth per connection; a consumer that cannot drain its
//	           responses within WriteStall is killed as a slow reader so it
//	           cannot wedge the shared worker pool.
//
// The server's goroutine count is therefore bounded by
// acceptShards + readers + workers + one writer per connection — never by
// the number of in-flight requests.

// StageConfig tunes the staged server pipeline. The zero value selects the
// staged mode with defaults; Spawn reverts to the legacy
// goroutine-per-request server (kept as an A/B knob for benchmarks).
type StageConfig struct {
	// Spawn disables the staged pipeline: one reader goroutine per
	// connection and one goroutine per request, as the pre-staged
	// transport behaved.
	Spawn bool
	// AcceptShards is the number of parallel accept loops; 0 selects 2.
	AcceptShards int
	// Readers is the number of event-loop reader shards connections are
	// multiplexed onto; 0 selects min(GOMAXPROCS, 8).
	Readers int
	// Workers is the fixed handler pool size; 0 selects
	// max(64, 8*GOMAXPROCS). Handlers that block on downstream RPCs
	// consume a worker for their whole duration, so undersizing this on a
	// coordinator trades throughput for shedding.
	Workers int
	// DispatchDepth bounds the decoded-request queue between readers and
	// workers; 0 selects 1024. A full queue sheds with kindBusy.
	DispatchDepth int
	// WriteDepth bounds each connection's response queue; 0 selects 256.
	WriteDepth int
	// MaxConns bounds accepted connections; 0 selects 65536. Beyond it new
	// connections are shed at the accept stage.
	MaxConns int
	// WriteStall is how long a worker waits on a full writer queue before
	// the connection is killed as a slow consumer; 0 selects 5s.
	WriteStall time.Duration
}

// Defaulted resolves zero fields to the values Serve will use — benchmarks
// and tests use it to compute the pipeline's goroutine bound.
func (c StageConfig) Defaulted() StageConfig {
	if c.AcceptShards <= 0 {
		c.AcceptShards = 2
	}
	if c.Readers <= 0 {
		c.Readers = runtime.GOMAXPROCS(0)
		if c.Readers > 8 {
			c.Readers = 8
		}
	}
	if c.Workers <= 0 {
		c.Workers = 8 * runtime.GOMAXPROCS(0)
		if c.Workers < 64 {
			c.Workers = 64
		}
	}
	if c.DispatchDepth <= 0 {
		c.DispatchDepth = 1024
	}
	if c.WriteDepth <= 0 {
		c.WriteDepth = 256
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 65536
	}
	if c.WriteStall <= 0 {
		c.WriteStall = 5 * time.Second
	}
	return c
}

// GoroutineBound is the staged server's worst-case goroutine count at
// conns open connections: the fixed stages plus one writer per connection.
func (c StageConfig) GoroutineBound(conns int) int64 {
	d := c.Defaulted()
	bound := int64(d.AcceptShards) + int64(d.Readers) + int64(d.Workers) + int64(conns)
	if runtime.GOOS != "linux" {
		bound += int64(conns) // fallback readers are per-connection
	}
	return bound
}

// errWouldBlock is pump's "socket drained" sentinel on the non-blocking
// read path.
var errWouldBlock = errors.New("transport: read would block")

// errProtocol kills a connection that sent a non-request frame.
var errProtocol = errors.New("transport: protocol violation")

// dItem is one decoded request travelling from a reader shard to a worker.
// ext and body alias *bufp, which the worker recycles after the handler
// returns.
type dItem struct {
	sc   *sconn
	id   uint64
	op   uint16
	ext  []byte
	body []byte
	bufp *[]byte
	enq  time.Time
}

// wItem is one response frame queued on a connection's writer. bufp, when
// set, is the pooled request frame the response may alias (handlers echo
// request bytes in practice); the writer recycles it only after the
// response bytes are on the wire.
type wItem struct {
	id   uint64
	op   uint16
	kind byte
	body []byte
	bufp *[]byte
	enq  time.Time
}

// stagedServer owns the pipeline for one TCPTransport's server side.
type stagedServer struct {
	t        *TCPTransport
	cfg      StageConfig
	h        Handler
	dispatch chan dItem
	readers  *readerPool

	mu     sync.Mutex
	conns  map[*sconn]struct{}
	closed bool

	// readerWG tracks every goroutine that may send on dispatch; close()
	// waits for it before closing the channel.
	readerWG sync.WaitGroup
}

func newStagedServer(t *TCPTransport, cfg StageConfig, h Handler) (*stagedServer, error) {
	s := &stagedServer{
		t:     t,
		cfg:   cfg.Defaulted(),
		h:     h,
		conns: map[*sconn]struct{}{},
	}
	s.dispatch = make(chan dItem, s.cfg.DispatchDepth)
	rp, err := newReaderPool(s, s.cfg.Readers)
	if err != nil {
		return nil, err
	}
	s.readers = rp
	return s, nil
}

func (s *stagedServer) start(ln net.Listener) {
	for i := 0; i < s.cfg.Workers; i++ {
		s.t.wg.Add(1)
		s.t.goros.Add(1)
		go s.worker()
	}
	for i := 0; i < s.cfg.AcceptShards; i++ {
		s.t.wg.Add(1)
		s.t.goros.Add(1)
		go s.acceptLoop(ln)
	}
}

func (s *stagedServer) acceptLoop(ln net.Listener) {
	defer s.t.wg.Done()
	defer s.t.goros.Add(-1)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.admit(conn, time.Now())
	}
}

// admit applies the accept stage's bound and hands the connection to a
// reader shard and a dedicated writer.
func (s *stagedServer) admit(conn net.Conn, accepted time.Time) {
	m := s.t.metrics.Load()
	s.mu.Lock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		overloaded := !s.closed
		s.mu.Unlock()
		conn.Close()
		if overloaded && m != nil {
			m.acceptSheds.Inc()
		}
		return
	}
	sc := &sconn{
		srv:  s,
		conn: conn,
		from: conn.RemoteAddr().String(),
		wq:   make(chan wItem, s.cfg.WriteDepth),
		done: make(chan struct{}),
		bw:   bufio.NewWriterSize(conn, 32<<10),
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	if m != nil {
		m.acceptDepth.Add(1)
	}
	// Register with the reader shard before spawning the writer: everything
	// that can later call shutdown (readers, workers, the writer) starts
	// after sc.detach is published.
	if err := s.readers.add(sc); err != nil {
		sc.shutdown()
		return
	}
	s.t.wg.Add(1)
	s.t.goros.Add(1)
	go sc.writeLoop()
	if m != nil {
		m.acceptWait.Observe(time.Since(accepted))
	}
}

// worker is one slot of the fixed handler pool: it drains the dispatch
// queue, runs the handler and queues the response on the connection's
// writer. The pooled request frame travels with the response (handlers may
// echo request bytes) and is recycled once the response is on the wire.
func (s *stagedServer) worker() {
	defer s.t.wg.Done()
	defer s.t.goros.Add(-1)
	for it := range s.dispatch {
		if m := s.t.metrics.Load(); m != nil {
			m.dispatchDepth.Add(-1)
			m.dispatchWait.Observe(time.Since(it.enq))
		}
		resp, herr := s.h(context.Background(), it.sc.from, Message{Op: it.op, Body: it.body, Trace: it.ext})
		if herr != nil {
			it.sc.respond(wItem{id: it.id, op: it.op, kind: kindError, body: []byte(herr.Error()), bufp: it.bufp, enq: time.Now()})
			continue
		}
		it.sc.respond(wItem{id: it.id, op: resp.Op, kind: kindResponse, body: resp.Body, bufp: it.bufp, enq: time.Now()})
	}
}

// close tears the pipeline down: connections first (their writers exit via
// done), then the reader shards, and only then — once nothing can send on
// dispatch — the dispatch queue, which lets the workers drain and exit.
func (s *stagedServer) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*sconn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.shutdown()
	}
	s.readers.close()
	s.readerWG.Wait()
	close(s.dispatch)
}

// sconn is one accepted connection in the staged pipeline. The frame-parse
// state is owned by its reader shard and needs no locking.
type sconn struct {
	srv    *stagedServer
	conn   net.Conn
	rc     syscall.RawConn // set on the event-loop (Linux) path
	fd     int
	from   string
	wq     chan wItem
	done   chan struct{}
	once   sync.Once
	detach func() // unregisters from the reader shard; may be nil

	// wmu serializes access to the buffered writer between the dedicated
	// writeLoop and workers taking the direct-write fast path. wdl tracks
	// the armed write deadline so it is refreshed once per stall window,
	// not per response.
	wmu sync.Mutex
	bw  *bufio.Writer
	wdl time.Time

	// Reader-owned frame state machine: the 4-byte length prefix
	// accumulates in hdr, then the frame body fills a pooled buffer.
	// Socket bytes stage through rbufp (one read syscall per wakeup fills
	// it, then frames are carved out) which returns to its pool between
	// wakeups — idle connections hold no staging buffer.
	hdr        [4]byte
	hdrGot     int
	need, got  int
	bufp       *[]byte
	rbufp      *[]byte
	rpos, rlen int
	frameStart time.Time

	protoLogged bool // reader-owned
}

// readBufSize is the reader staging buffer: large enough that a typical
// burst of pipelined requests lands in one read syscall.
const readBufSize = 16 << 10

var readBufPool = sync.Pool{New: func() any { b := make([]byte, readBufSize); return &b }}

// pump advances the frame state machine using read, which follows
// io.Reader semantics and may return errWouldBlock when the socket drains.
// Complete frames are delivered to the dispatch stage; any other error
// (including a framing violation) is fatal to the connection.
func (sc *sconn) pump(read func([]byte) (int, error)) error {
	if sc.rbufp == nil {
		sc.rbufp = readBufPool.Get().(*[]byte)
	}
	err := sc.pumpBuf(read)
	// The staging buffer is drained at every return (fatal errors abandon
	// any remainder), so it goes back to the pool rather than sitting on an
	// idle connection between wakeups.
	readBufPool.Put(sc.rbufp)
	sc.rbufp = nil
	sc.rpos, sc.rlen = 0, 0
	return err
}

func (sc *sconn) pumpBuf(read func([]byte) (int, error)) error {
	m := sc.srv.t.metrics.Load()
	rbuf := *sc.rbufp
	var pending error
	for {
		// Carve frames out of the staged bytes.
		for sc.rpos < sc.rlen {
			if err := sc.consume(rbuf, m); err != nil {
				return err
			}
		}
		if pending != nil {
			return pending
		}
		sc.rpos, sc.rlen = 0, 0
		// A body larger than the staging buffer skips it: read straight
		// into the pooled frame.
		if sc.bufp != nil && sc.need-sc.got >= len(rbuf) {
			n, err := read((*sc.bufp)[sc.got:sc.need])
			sc.got += n
			if sc.got == sc.need {
				if ferr := sc.finishFrame(m); ferr != nil {
					return ferr
				}
			}
			if err != nil {
				return err
			}
			continue
		}
		n, err := read(rbuf)
		sc.rlen = n
		switch {
		case err != nil:
			if n == 0 {
				return err
			}
			pending = err // consume what arrived, then report
		case sc.rc != nil && n < len(rbuf):
			// Short read on the non-blocking path means the socket is
			// drained — skip the read syscall that would confirm it with
			// EAGAIN. If bytes raced in, level-triggered epoll re-arms.
			pending = errWouldBlock
		}
	}
}

// consume advances the frame state machine by one step from the staging
// buffer: accumulate the length prefix, then fill the frame body, then
// deliver. Called only while staged bytes remain.
func (sc *sconn) consume(rbuf []byte, m *tcpMetrics) error {
	if sc.bufp == nil {
		n := copy(sc.hdr[sc.hdrGot:], rbuf[sc.rpos:sc.rlen])
		sc.hdrGot += n
		sc.rpos += n
		if sc.hdrGot < len(sc.hdr) {
			return nil
		}
		fl := binary.LittleEndian.Uint32(sc.hdr[:])
		if fl < frameHeaderLen || fl > maxFrame {
			if m != nil {
				m.readSheds.Inc()
			}
			return fmt.Errorf("transport: bad frame length %d", fl)
		}
		sc.bufp = getFrameBuf(int(fl))
		*sc.bufp = (*sc.bufp)[:fl]
		sc.need, sc.got = int(fl), 0
		sc.hdrGot = 0
		sc.frameStart = time.Now()
		if m != nil {
			m.readDepth.Add(1)
		}
		return nil
	}
	n := copy((*sc.bufp)[sc.got:sc.need], rbuf[sc.rpos:sc.rlen])
	sc.got += n
	sc.rpos += n
	if sc.got == sc.need {
		return sc.finishFrame(m)
	}
	return nil
}

// finishFrame parses the completed frame and hands it to the dispatch
// stage.
func (sc *sconn) finishFrame(m *tcpMetrics) error {
	bufp := sc.bufp
	sc.bufp = nil
	if m != nil {
		m.readDepth.Add(-1)
	}
	id, op, kind, ext, body, perr := parseFrame(*bufp)
	if perr != nil {
		putFrameBuf(bufp)
		if m != nil {
			m.readSheds.Inc()
		}
		return perr
	}
	return sc.deliver(id, op, kind, ext, body, bufp)
}

// deliver hands one decoded request to the dispatch stage, shedding with an
// immediate busy frame when the queue is full.
func (sc *sconn) deliver(id uint64, op uint16, kind byte, ext, body []byte, bufp *[]byte) error {
	t := sc.srv.t
	m := t.metrics.Load()
	m.frameIn(len(body))
	if kind != kindRequest {
		putFrameBuf(bufp)
		if !sc.protoLogged {
			sc.protoLogged = true
			t.noteProtocolError(sc.from, kind)
		} else if m != nil {
			m.protoErrors.Inc()
		}
		return errProtocol
	}
	if m != nil {
		m.readWait.Observe(time.Since(sc.frameStart))
	}
	select {
	case sc.srv.dispatch <- dItem{sc: sc, id: id, op: op, ext: ext, body: body, bufp: bufp, enq: time.Now()}:
		if m != nil {
			m.dispatchDepth.Add(1)
		}
	default:
		// Dispatch saturated: shed. The request never ran, the frame dies
		// now, and the caller gets pushback in one writer hop instead of a
		// timeout.
		putFrameBuf(bufp)
		if m != nil {
			m.dispatchSheds.Inc()
		}
		select {
		case sc.wq <- wItem{id: id, op: op, kind: kindBusy, enq: time.Now()}:
			if m != nil {
				m.writeDepth.Add(1)
			}
		case <-sc.done:
		default:
			// Writer saturated too; dropping the busy frame still bounds
			// everything — the caller times out like any lost datagram.
		}
	}
	return nil
}

// respond delivers one response to the connection's writer. When the writer
// is idle and its queue empty, the worker writes the frame inline instead of
// paying the handoff to writeLoop (response order per connection is free to
// change anyway — the mux is by request id). Otherwise the response queues,
// and a slow consumer gets WriteStall to make room before the connection is
// killed — a reader that never drains must not wedge the shared worker pool.
func (sc *sconn) respond(it wItem) {
	m := sc.srv.t.metrics.Load()
	if len(sc.wq) == 0 && sc.wmu.TryLock() {
		sc.writeDirect(it, m)
		return
	}
	select {
	case sc.wq <- it:
		if m != nil {
			m.writeDepth.Add(1)
		}
		return
	case <-sc.done:
		return
	default:
	}
	timer := time.NewTimer(sc.srv.cfg.WriteStall)
	defer timer.Stop()
	select {
	case sc.wq <- it:
		if m != nil {
			m.writeDepth.Add(1)
		}
	case <-sc.done:
		putFrameBuf(it.bufp) // response never queued; the frame dies here
	case <-timer.C:
		if m != nil {
			m.writeSheds.Inc()
		}
		sc.srv.t.logf("transport: killing slow consumer %s: writer queue full for %s", sc.from, sc.srv.cfg.WriteStall)
		putFrameBuf(it.bufp)
		sc.shutdown()
	}
}

// writeDirect is the worker fast path: caller holds wmu, the writer queue
// was empty, so the frame goes straight to the socket on the worker's own
// stack. A write deadline keeps the WriteStall bound — a consumer that
// cannot absorb one response within it is killed, not waited on, so the
// direct path never wedges the shared worker pool.
func (sc *sconn) writeDirect(it wItem, m *tcpMetrics) {
	select {
	case <-sc.done:
		sc.wmu.Unlock()
		putFrameBuf(it.bufp)
		return
	default:
	}
	sc.armWriteDeadline()
	ok := sc.writeOne(it, false)
	var err error
	if ok {
		err = sc.bw.Flush()
	}
	sc.wmu.Unlock()
	if !ok {
		return // writeOne already shut the connection down
	}
	if err != nil {
		if ne, isNet := err.(net.Error); isNet && ne.Timeout() {
			if m != nil {
				m.writeSheds.Inc()
			}
			sc.srv.t.logf("transport: killing slow consumer %s: write stalled for %s", sc.from, sc.srv.cfg.WriteStall)
		}
		sc.shutdown()
		return
	}
	if m != nil {
		m.flushes.Inc()
	}
}

// armWriteDeadline keeps a write deadline between WriteStall and
// 2*WriteStall ahead of every socket write, refreshing it once per stall
// window instead of around each response — SetWriteDeadline is a timer
// modification and would dominate the fast path. A consumer that blocks a
// write past the deadline errors out and is killed as a slow reader.
// Caller holds wmu.
func (sc *sconn) armWriteDeadline() {
	now := time.Now()
	if sc.wdl.Sub(now) < sc.srv.cfg.WriteStall {
		sc.wdl = now.Add(2 * sc.srv.cfg.WriteStall)
		sc.conn.SetWriteDeadline(sc.wdl)
	}
}

// writeLoop is the connection's dedicated writer: it preserves the
// out-of-order response multiplexing (workers finish in any order; each
// response carries its request id) and coalesces back-to-back responses
// into one flush.
func (sc *sconn) writeLoop() {
	t := sc.srv.t
	defer t.wg.Done()
	defer t.goros.Add(-1)
	// On exit, recycle the request frames still riding queued responses.
	defer func() {
		for {
			select {
			case it := <-sc.wq:
				putFrameBuf(it.bufp)
			default:
				return
			}
		}
	}()
	for {
		var it wItem
		select {
		case it = <-sc.wq:
		case <-sc.done:
			return
		}
		sc.wmu.Lock()
		sc.armWriteDeadline()
		if !sc.writeOne(it, true) {
			sc.wmu.Unlock()
			return
		}
		for drained := false; !drained; {
			select {
			case it = <-sc.wq:
				if !sc.writeOne(it, true) {
					sc.wmu.Unlock()
					return
				}
			case <-sc.done:
				sc.wmu.Unlock()
				return
			default:
				drained = true
			}
		}
		err := sc.bw.Flush()
		sc.wmu.Unlock()
		if err != nil {
			sc.shutdown()
			return
		}
		if m := t.metrics.Load(); m != nil {
			m.flushes.Inc()
		}
	}
}

// writeOne encodes one response into the buffered writer; false means the
// connection died. The response bytes land in the buffered writer (or the
// socket) before the pooled request frame they may alias is recycled.
// queued distinguishes wq items (which carry a depth-gauge slot) from
// direct writes. Caller holds wmu.
func (sc *sconn) writeOne(it wItem, queued bool) bool {
	m := sc.srv.t.metrics.Load()
	if m != nil {
		if queued {
			m.writeDepth.Add(-1)
		}
		m.writeWait.Observe(time.Since(it.enq))
	}
	m.frameOut(len(it.body))
	err := writeFrameTo(sc.bw, it.id, it.op, it.kind, nil, it.body)
	if errors.Is(err, ErrFrameTooLarge) {
		// Nothing hit the wire: downgrade to an error reply so the caller
		// learns why instead of timing out.
		err = writeFrameTo(sc.bw, it.id, it.op, kindError, nil, []byte(err.Error()))
	}
	putFrameBuf(it.bufp)
	if err != nil {
		sc.shutdown()
		return false
	}
	return true
}

// shutdown closes the connection exactly once: it detaches from the reader
// shard, releases the writer, and drops the accept-stage slot.
func (sc *sconn) shutdown() {
	sc.once.Do(func() {
		if sc.detach != nil {
			sc.detach()
		}
		close(sc.done)
		sc.conn.Close()
		s := sc.srv
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		if m := s.t.metrics.Load(); m != nil {
			m.acceptDepth.Add(-1)
		}
	})
}

// releaseReadBuf returns a partially-assembled frame to the pool when the
// reader abandons the connection. Reader-shard-owned, like the state it
// clears.
func (sc *sconn) releaseReadBuf() {
	if sc.bufp != nil {
		if m := sc.srv.t.metrics.Load(); m != nil {
			m.readDepth.Add(-1)
		}
		putFrameBuf(sc.bufp)
		sc.bufp = nil
	}
}
