package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"sedna/internal/obs"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          time.Second,
		HalfOpenProbes:   1,
		now:              clk.now,
	})
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	b.OnFailure()
	b.OnFailure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 failures state = %v, want closed", got)
	}
	// A success resets the consecutive count.
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("success did not reset the failure count")
	}
	b.OnFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before the cooldown")
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was rejected")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", got)
	}
	// Only HalfOpenProbes calls may proceed while the probe is in flight.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted with HalfOpenProbes=1")
	}
	b.OnSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerHalfOpenProbeReopensOnFailure(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was rejected")
	}
	b.OnFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	// The cooldown restarts from the failed probe.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call before the new cooldown")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but probe was rejected")
	}
}

// flakyCaller fails until revived.
type flakyCaller struct {
	calls int
	dead  bool
}

func (f *flakyCaller) Call(ctx context.Context, addr string, req Message) (Message, error) {
	f.calls++
	if f.dead {
		return Message{}, ErrUnreachable
	}
	return Message{Op: req.Op}, nil
}

func TestHealthCallerFastFailsAndRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	inner := &flakyCaller{dead: true}
	reg := obs.NewRegistry()
	hc := NewHealthCaller(inner, BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          time.Second,
		now:              clk.now,
	})
	hc.Instrument(reg)
	var transitions []string
	hc.OnStateChange = func(addr string, from, to BreakerState) {
		transitions = append(transitions, addr+":"+from.String()+">"+to.String())
	}

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := hc.Call(ctx, "node-a", Message{Op: 1}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: err = %v, want unreachable", i, err)
		}
	}
	if got := hc.State("node-a"); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	// Fast fail: the inner caller is not touched.
	before := inner.calls
	if _, err := hc.Call(ctx, "node-a", Message{Op: 1}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if inner.calls != before {
		t.Fatal("open breaker let the call reach the network")
	}
	snap := reg.Snapshot()
	if snap.Counter("transport.breaker.fast_fails") != 1 {
		t.Fatalf("fast_fails = %d, want 1", snap.Counter("transport.breaker.fast_fails"))
	}
	if snap.Counter("transport.breaker.opened") != 1 {
		t.Fatalf("opened = %d, want 1", snap.Counter("transport.breaker.opened"))
	}
	if snap.Gauge("transport.breakers.open") != 1 {
		t.Fatalf("breakers.open gauge = %d, want 1", snap.Gauge("transport.breakers.open"))
	}

	// Node comes back: the half-open probe succeeds and closes the breaker.
	inner.dead = false
	clk.advance(time.Second)
	if _, err := hc.Call(ctx, "node-a", Message{Op: 1}); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if got := hc.State("node-a"); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	snap = reg.Snapshot()
	if snap.Gauge("transport.breakers.open") != 0 {
		t.Fatalf("breakers.open gauge = %d, want 0", snap.Gauge("transport.breakers.open"))
	}
	want := []string{
		"node-a:closed>open",
		"node-a:open>half-open",
		"node-a:half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestHealthCallerIgnoresRemoteAndCancelErrors(t *testing.T) {
	inner := &remoteErrCaller{}
	hc := NewHealthCaller(inner, BreakerConfig{FailureThreshold: 1})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		hc.Call(ctx, "node-a", Message{})
	}
	if got := hc.State("node-a"); got != BreakerClosed {
		t.Fatalf("remote errors opened the breaker (state %v)", got)
	}

	cancelled := &cancelErrCaller{}
	hc2 := NewHealthCaller(cancelled, BreakerConfig{FailureThreshold: 1})
	for i := 0; i < 5; i++ {
		hc2.Call(ctx, "node-a", Message{})
	}
	if got := hc2.State("node-a"); got != BreakerClosed {
		t.Fatalf("caller cancellations opened the breaker (state %v)", got)
	}
}

type remoteErrCaller struct{}

func (remoteErrCaller) Call(ctx context.Context, addr string, req Message) (Message, error) {
	return Message{}, &RemoteError{Msg: "outdated"}
}

type cancelErrCaller struct{}

func (cancelErrCaller) Call(ctx context.Context, addr string, req Message) (Message, error) {
	return Message{}, context.Canceled
}
