package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/obs"
)

// TCP wire format, one frame per request or response (little endian):
//
//	u32 frame length (bytes after this field)
//	u64 request id (echoed in the response)
//	u16 opcode
//	u8  kind: 0 request, 1 response, 2 error response, 3 busy (overload
//	    shed: empty body, request never ran — retry after backoff);
//	    bit 7 (0x80) flags an extension block before the body
//	[u32 extension length, extension bytes]   — only when bit 7 is set
//	...  body (error responses carry the error string)
//
// The only extension today is the encoded obs.TraceContext that carries a
// sampled op's trace across nodes; the block itself starts with a version
// byte, so receivers skip contents they do not understand while still
// framing the message correctly.
//
// Multiple requests are pipelined over one connection; a per-connection
// reader goroutine demultiplexes responses by id.

const (
	kindRequest  = 0
	kindResponse = 1
	kindError    = 2
	// kindBusy is an immediate overload rejection: the server's dispatch
	// queue was full, so it answered without running the handler. The body
	// is empty; the id routes the rejection to the waiting caller, which
	// surfaces it as ErrOverloaded. Peers predating this kind deliver a
	// per-call "bad frame kind" error instead — the connection survives.
	kindBusy = 3

	// kindExtFlag marks a frame carrying a length-delimited extension
	// block (trace context) between header and body.
	kindExtFlag = 0x80
	kindMask    = 0x7f

	frameHeaderLen = 8 + 2 + 1
	// maxFrame guards against corrupt length prefixes.
	maxFrame = 64 << 20
	// maxExt bounds one extension block.
	maxExt = 4096
)

// TCPTransport carries Messages over real TCP sockets. Create one per
// process with NewTCP, then Serve to accept and Call to issue requests.
type TCPTransport struct {
	addr     string
	dialTO   time.Duration
	stage    StageConfig
	metrics  atomic.Pointer[tcpMetrics]
	logFn    atomic.Pointer[func(format string, args ...any)]
	goros    atomic.Int64 // server-side goroutines (accept/read/dispatch/write)
	mu       sync.Mutex
	listener net.Listener
	handler  Handler
	conns    map[string]*tcpClientConn
	dialing  map[string]*dialFlight
	accepted map[net.Conn]struct{}
	staged   *stagedServer
	closed   bool
	wg       sync.WaitGroup
}

// tcpMetrics caches the transport's obs handles; all fields are hot-path
// safe (obs handles are lock-free).
type tcpMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	dials, dialErrors   *obs.Counter
	flushes             *obs.Counter
	protoErrors         *obs.Counter
	callLat             *obs.Histogram

	// Per-stage pipeline instrumentation (staged mode): queue depths,
	// shed counters and queue-wait histograms for each of the four stages.
	acceptDepth, readDepth, dispatchDepth, writeDepth *obs.Gauge
	acceptSheds, readSheds, dispatchSheds, writeSheds *obs.Counter
	acceptWait, readWait, dispatchWait, writeWait     *obs.Histogram
}

// Instrument wires the transport into an obs registry: frame and byte
// counters in both directions, dial counters, a per-RPC latency histogram
// covering the full call round trip, the protocol-violation counter, and
// the per-stage depth/shed/wait series of the staged pipeline. Safe to call
// at any time; pre-existing pooled connections pick the metrics up on their
// next frame.
func (t *TCPTransport) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	t.metrics.Store(&tcpMetrics{
		framesIn:      r.Counter("transport.frames_in"),
		framesOut:     r.Counter("transport.frames_out"),
		bytesIn:       r.Counter("transport.bytes_in"),
		bytesOut:      r.Counter("transport.bytes_out"),
		dials:         r.Counter("transport.dials"),
		dialErrors:    r.Counter("transport.dial_errors"),
		flushes:       r.Counter("transport.flushes"),
		protoErrors:   r.Counter("transport.protocol_errors"),
		callLat:       r.Histogram("transport.call"),
		acceptDepth:   r.Gauge("transport.stage.accept.depth"),
		readDepth:     r.Gauge("transport.stage.read.depth"),
		dispatchDepth: r.Gauge("transport.stage.dispatch.depth"),
		writeDepth:    r.Gauge("transport.stage.write.depth"),
		acceptSheds:   r.Counter("transport.stage.accept.sheds"),
		readSheds:     r.Counter("transport.stage.read.sheds"),
		dispatchSheds: r.Counter("transport.stage.dispatch.sheds"),
		writeSheds:    r.Counter("transport.stage.write.sheds"),
		acceptWait:    r.Histogram("transport.stage.accept.wait"),
		readWait:      r.Histogram("transport.stage.read.wait"),
		dispatchWait:  r.Histogram("transport.stage.dispatch.wait"),
		writeWait:     r.Histogram("transport.stage.write.wait"),
	})
}

// SetLogf installs a diagnostic logger (protocol violations, slow-consumer
// kills). Safe to call at any time; nil disables.
func (t *TCPTransport) SetLogf(fn func(format string, args ...any)) {
	if fn == nil {
		t.logFn.Store(nil)
		return
	}
	t.logFn.Store(&fn)
}

func (t *TCPTransport) logf(format string, args ...any) {
	if fn := t.logFn.Load(); fn != nil {
		(*fn)(format, args...)
	}
}

// ServerGoroutines reports the number of goroutines the server side of the
// transport is running right now — accept shards, reader shards, dispatch
// workers and per-connection writers in staged mode; per-connection readers
// plus one goroutine per in-flight request in spawn mode. The staged
// pipeline's bound (readers + workers + shards + one writer per connection)
// is what the connection-scaling benchmark pins.
func (t *TCPTransport) ServerGoroutines() int64 { return t.goros.Load() }

// frameIn/frameOut record one frame of n body bytes (plus framing).
func (m *tcpMetrics) frameIn(bodyLen int) {
	if m != nil {
		m.framesIn.Inc()
		m.bytesIn.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

func (m *tcpMetrics) frameOut(bodyLen int) {
	if m != nil {
		m.framesOut.Inc()
		m.bytesOut.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

// NewTCP returns a transport that will listen on addr when Serve is called.
// addr may be ":0"; Addr reports the bound address after Serve. The server
// side runs the staged pipeline with default bounds; use NewTCPStaged or
// SetStages to tune it or to select the legacy goroutine-per-request mode.
func NewTCP(addr string) *TCPTransport {
	return &TCPTransport{
		addr:     addr,
		dialTO:   5 * time.Second,
		conns:    map[string]*tcpClientConn{},
		dialing:  map[string]*dialFlight{},
		accepted: map[net.Conn]struct{}{},
	}
}

// NewTCPStaged returns a transport whose server side uses the given stage
// configuration (zero fields select defaults; Spawn reverts to the legacy
// goroutine-per-request server for A/B comparison).
func NewTCPStaged(addr string, cfg StageConfig) *TCPTransport {
	t := NewTCP(addr)
	t.stage = cfg
	return t
}

// SetStages replaces the stage configuration. It must be called before
// Serve.
func (t *TCPTransport) SetStages(cfg StageConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stage = cfg
}

// NewTCPListen binds the listener immediately so Addr returns the real port
// before Serve runs — needed when the bound address doubles as the node's
// cluster identity.
func NewTCPListen(addr string) (*TCPTransport, error) {
	t := NewTCP(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.listener = ln
	return t, nil
}

// Addr returns the listen address (resolved after Serve).
func (t *TCPTransport) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listener != nil {
		return t.listener.Addr().String()
	}
	return t.addr
}

// Serve starts accepting connections, binding the listener first unless
// the transport was created with NewTCPListen. By default requests flow
// through the staged pipeline (bounded accept/read/dispatch/write stages
// with shed-on-overload); StageConfig.Spawn selects the legacy
// goroutine-per-request server instead.
func (t *TCPTransport) Serve(h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler != nil {
		return fmt.Errorf("transport: Serve called twice")
	}
	if t.listener == nil {
		ln, err := net.Listen("tcp", t.addr)
		if err != nil {
			return err
		}
		t.listener = ln
	}
	t.handler = h
	if t.stage.Spawn {
		t.wg.Add(1)
		t.goros.Add(1)
		go t.acceptLoop(t.listener, h)
		return nil
	}
	ss, err := newStagedServer(t, t.stage, h)
	if err != nil {
		t.handler = nil
		return err
	}
	t.staged = ss
	ss.start(t.listener)
	return nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	defer t.goros.Add(-1)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		t.goros.Add(1)
		go func() {
			defer t.wg.Done()
			defer t.goros.Add(-1)
			t.serveConn(conn, h)
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
		}()
	}
}

// noteProtocolError counts a non-request frame arriving on a server
// connection and logs the peer once before the connection is dropped.
func (t *TCPTransport) noteProtocolError(from string, kind byte) {
	if m := t.metrics.Load(); m != nil {
		m.protoErrors.Inc()
	}
	t.logf("transport: protocol violation from %s: unexpected frame kind %d, dropping connection", from, kind)
}

func (t *TCPTransport) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	fw := newFrameWriter(conn, &t.metrics)
	from := conn.RemoteAddr().String()
	for {
		id, op, kind, ext, body, bufp, err := readFramePooled(conn)
		if err != nil {
			return
		}
		t.metrics.Load().frameIn(len(body))
		if kind != kindRequest {
			putFrameBuf(bufp)
			t.noteProtocolError(from, kind)
			return
		}
		t.goros.Add(1)
		go func() {
			// The request frame is pooled: body and ext die when this
			// goroutine returns (see the Handler body-ownership contract),
			// after the response — which must not alias them — is written.
			defer t.goros.Add(-1)
			defer putFrameBuf(bufp)
			resp, herr := h(context.Background(), from, Message{Op: op, Body: body, Trace: ext})
			m := t.metrics.Load()
			if herr != nil {
				errBody := []byte(herr.Error())
				m.frameOut(len(errBody))
				fw.writeFrame(id, op, kindError, nil, errBody)
				return
			}
			m.frameOut(len(resp.Body))
			if werr := fw.writeFrame(id, resp.Op, kindResponse, nil, resp.Body); errors.Is(werr, ErrFrameTooLarge) {
				// Nothing hit the wire: downgrade to an error reply so the
				// caller learns why instead of timing out.
				fw.writeFrame(id, resp.Op, kindError, nil, []byte(werr.Error()))
			}
		}()
	}
}

// Call implements Caller.
func (t *TCPTransport) Call(ctx context.Context, addr string, req Message) (Message, error) {
	cc, err := t.clientConn(addr)
	if err != nil {
		return Message{}, err
	}
	return cc.call(ctx, req)
}

// dialFlight is one in-progress dial that concurrent callers for the same
// addr wait on instead of each paying (and discarding) their own TCP dial.
type dialFlight struct {
	done chan struct{}
	cc   *tcpClientConn
	err  error
}

func (t *TCPTransport) clientConn(addr string) (*tcpClientConn, error) {
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		if cc := t.conns[addr]; cc != nil && !cc.dead() {
			t.mu.Unlock()
			return cc, nil
		}
		if f := t.dialing[addr]; f != nil {
			// Singleflight: a dial to this addr is already under way;
			// share its outcome instead of racing a duplicate connection.
			t.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			if !f.cc.dead() {
				return f.cc, nil
			}
			continue // the shared conn died already; start a fresh flight
		}
		f := &dialFlight{done: make(chan struct{})}
		t.dialing[addr] = f
		t.mu.Unlock()

		conn, err := net.DialTimeout("tcp", addr, t.dialTO)
		if err != nil {
			if m := t.metrics.Load(); m != nil {
				m.dialErrors.Inc()
			}
			f.err = fmt.Errorf("%w: %v", ErrUnreachable, err)
			t.mu.Lock()
			delete(t.dialing, addr)
			t.mu.Unlock()
			close(f.done)
			return nil, f.err
		}
		if m := t.metrics.Load(); m != nil {
			m.dials.Inc()
		}
		cc := newTCPClientConn(conn, &t.metrics)

		t.mu.Lock()
		delete(t.dialing, addr)
		if t.closed {
			f.err = ErrClosed
			t.mu.Unlock()
			close(f.done)
			cc.close(ErrClosed)
			return nil, ErrClosed
		}
		t.conns[addr] = cc
		f.cc = cc
		t.mu.Unlock()
		close(f.done)
		return cc, nil
	}
}

// Close stops the listener and closes pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.listener
	conns := t.conns
	t.conns = map[string]*tcpClientConn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	staged := t.staged
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cc := range conns {
		cc.close(ErrClosed)
	}
	for _, c := range accepted {
		c.Close()
	}
	if staged != nil {
		staged.close()
	}
	t.wg.Wait()
	return nil
}

// tcpClientConn is one pooled outbound connection with pipelining.
type tcpClientConn struct {
	conn    net.Conn
	metrics *atomic.Pointer[tcpMetrics]
	fw      *frameWriter
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error
}

type result struct {
	msg Message
	err error
}

func newTCPClientConn(conn net.Conn, metrics *atomic.Pointer[tcpMetrics]) *tcpClientConn {
	if metrics == nil {
		metrics = new(atomic.Pointer[tcpMetrics])
	}
	cc := &tcpClientConn{
		conn:    conn,
		metrics: metrics,
		fw:      newFrameWriter(conn, metrics),
		pending: map[uint64]chan result{},
	}
	go cc.readLoop()
	return cc
}

func (cc *tcpClientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

func (cc *tcpClientConn) call(ctx context.Context, req Message) (Message, error) {
	m := cc.metrics.Load()
	if m != nil {
		start := time.Now()
		defer func() { m.callLat.Observe(time.Since(start)) }()
	}
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return Message{}, err
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ch
	cc.mu.Unlock()

	m.frameOut(len(req.Body))
	err := cc.fw.writeFrame(id, req.Op, kindRequest, req.Trace, req.Body)
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			// Rejected before any bytes hit the wire: the connection is
			// still framed correctly, only this call fails.
			cc.mu.Lock()
			delete(cc.pending, id)
			cc.mu.Unlock()
			return Message{}, err
		}
		cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
		return Message{}, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return Message{}, ctx.Err()
	}
}

func (cc *tcpClientConn) readLoop() {
	for {
		id, op, kind, _, body, err := readFrame(cc.conn)
		if err != nil {
			cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		cc.metrics.Load().frameIn(len(body))
		cc.mu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ch == nil {
			continue // caller gave up
		}
		switch kind {
		case kindResponse:
			ch <- result{msg: Message{Op: op, Body: body}}
		case kindError:
			ch <- result{err: &RemoteError{Msg: string(body)}}
		case kindBusy:
			ch <- result{err: fmt.Errorf("%w: %s shed the request", ErrOverloaded, cc.conn.RemoteAddr())}
		default:
			ch <- result{err: fmt.Errorf("transport: bad frame kind %d", kind)}
		}
	}
}

func (cc *tcpClientConn) close(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = map[uint64]chan result{}
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// framePool recycles flat frame buffers: the server's inbound request frames
// and one-shot writeFrame assemblies. Buffers above maxPooledFrame are not
// returned so a single 64 MB frame cannot pin megabytes of idle memory.
var framePool = sync.Pool{New: func() any { p := make([]byte, 0, 4096); return &p }}

const maxPooledFrame = 1 << 20

// getFrameBuf returns a pooled buffer with capacity for at least n bytes,
// length zero.
func getFrameBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

// putFrameBuf recycles a buffer obtained from getFrameBuf. The caller must
// not touch the slice (or anything aliasing it) afterwards.
func putFrameBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledFrame {
		return
	}
	*bp = (*bp)[:0]
	framePool.Put(bp)
}

// frameWriter serialises frame writes onto one connection through a shared
// buffered writer, coalescing back-to-back pipelined frames into fewer
// syscalls. Writers announce themselves by incrementing queued BEFORE taking
// the lock; after writing, the writer that decrements queued to zero flushes.
// A writer that sees queued > 0 skips the flush knowing a later writer —
// already committed to taking the lock — will carry its bytes, so every frame
// is flushed by someone and an idle connection never holds buffered data.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	queued  atomic.Int32
	metrics *atomic.Pointer[tcpMetrics]
}

func newFrameWriter(conn net.Conn, metrics *atomic.Pointer[tcpMetrics]) *frameWriter {
	if metrics == nil {
		metrics = new(atomic.Pointer[tcpMetrics])
	}
	return &frameWriter{bw: bufio.NewWriterSize(conn, 32<<10), metrics: metrics}
}

func (w *frameWriter) writeFrame(id uint64, op uint16, kind byte, ext, body []byte) error {
	w.queued.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := writeFrameTo(w.bw, id, op, kind, ext, body)
	if w.queued.Add(-1) == 0 {
		if ferr := w.bw.Flush(); err == nil {
			err = ferr
		}
		if m := w.metrics.Load(); m != nil {
			m.flushes.Inc()
		}
	}
	return err
}

// writeFrameTo encodes one frame into bw: a stack-built header followed by
// the ext and body slices, so no flat frame buffer is assembled. Frames
// whose ext+body would exceed maxFrame are rejected with ErrFrameTooLarge
// BEFORE any bytes are written: an oversized frame must fail one call, not
// poison the stream and kill the connection with an opaque "bad frame
// length" on the peer.
func writeFrameTo(bw *bufio.Writer, id uint64, op uint16, kind byte, ext, body []byte) error {
	if len(ext) > maxExt {
		// Never corrupt the stream over an oversized extension; the trace
		// is advisory, the request is not.
		ext = nil
	}
	extLen := 0
	if len(ext) > 0 {
		kind |= kindExtFlag
		extLen = 4 + len(ext)
	}
	if len(body) > maxFrame-frameHeaderLen-extLen {
		return fmt.Errorf("%w: %d body bytes (max %d)", ErrFrameTooLarge, len(body), maxFrame-frameHeaderLen-extLen)
	}
	var hdr [4 + frameHeaderLen + 4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(frameHeaderLen+extLen+len(body)))
	binary.LittleEndian.PutUint64(hdr[4:], id)
	binary.LittleEndian.PutUint16(hdr[12:], op)
	hdr[14] = kind
	n := 4 + frameHeaderLen
	if extLen > 0 {
		binary.LittleEndian.PutUint32(hdr[n:], uint32(len(ext)))
		n += 4
		if _, err := bw.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(ext); err != nil {
			return err
		}
	} else if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := bw.Write(body)
	return err
}

// writeFrame writes one frame directly to conn as a single Write, assembled
// in a pooled buffer. The data path uses frameWriter; this remains for
// one-shot writers and tests.
func writeFrame(conn net.Conn, id uint64, op uint16, kind byte, ext, body []byte) error {
	if len(ext) > maxExt {
		ext = nil
	}
	extLen := 0
	if len(ext) > 0 {
		kind |= kindExtFlag
		extLen = 4 + len(ext)
	}
	if len(body) > maxFrame-frameHeaderLen-extLen {
		return fmt.Errorf("%w: %d body bytes (max %d)", ErrFrameTooLarge, len(body), maxFrame-frameHeaderLen-extLen)
	}
	total := 4 + frameHeaderLen + extLen + len(body)
	bp := getFrameBuf(total)
	frame := (*bp)[:total]
	binary.LittleEndian.PutUint32(frame, uint32(frameHeaderLen+extLen+len(body)))
	binary.LittleEndian.PutUint64(frame[4:], id)
	binary.LittleEndian.PutUint16(frame[12:], op)
	frame[14] = kind
	off := 15
	if extLen > 0 {
		binary.LittleEndian.PutUint32(frame[off:], uint32(len(ext)))
		copy(frame[off+4:], ext)
		off += extLen
	}
	copy(frame[off:], body)
	_, err := conn.Write(frame)
	*bp = frame
	putFrameBuf(bp)
	return err
}

// parseFrame splits a received frame (everything after the length prefix)
// into its fields; ext and body alias buf.
func parseFrame(buf []byte) (id uint64, op uint16, kind byte, ext, body []byte, err error) {
	id = binary.LittleEndian.Uint64(buf)
	op = binary.LittleEndian.Uint16(buf[8:])
	kind = buf[10]
	rest := buf[frameHeaderLen:]
	if kind&kindExtFlag != 0 {
		kind &= kindMask
		if len(rest) < 4 {
			err = fmt.Errorf("transport: truncated extension block")
			return
		}
		en := binary.LittleEndian.Uint32(rest)
		if en > maxExt || int(en) > len(rest)-4 {
			err = fmt.Errorf("transport: bad extension length %d", en)
			return
		}
		ext = rest[4 : 4+en]
		rest = rest[4+en:]
	}
	body = rest
	return
}

// readFrame reads one frame into a fresh exact-size allocation; ext and body
// alias it. Used where the frame's bytes outlive the read loop iteration —
// the client readLoop hands body to the caller, which owns it from then on.
func readFrame(conn net.Conn) (id uint64, op uint16, kind byte, ext, body []byte, err error) {
	var lenBuf [4]byte
	if err = readFull(conn, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if err = readFull(conn, buf); err != nil {
		return
	}
	return parseFrame(buf)
}

// readFramePooled reads one frame into a pooled buffer; ext and body alias
// *bufp, which the caller must hand back via putFrameBuf once every byte of
// the frame is dead. bufp is nil on error.
func readFramePooled(conn net.Conn) (id uint64, op uint16, kind byte, ext, body []byte, bufp *[]byte, err error) {
	var lenBuf [4]byte
	if err = readFull(conn, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	bufp = getFrameBuf(int(n))
	buf := (*bufp)[:n]
	*bufp = buf
	if err = readFull(conn, buf); err != nil {
		putFrameBuf(bufp)
		bufp = nil
		return
	}
	id, op, kind, ext, body, err = parseFrame(buf)
	if err != nil {
		putFrameBuf(bufp)
		bufp = nil
	}
	return
}
