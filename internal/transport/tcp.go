package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/obs"
)

// TCP wire format, one frame per request or response (little endian):
//
//	u32 frame length (bytes after this field)
//	u64 request id (echoed in the response)
//	u16 opcode
//	u8  kind: 0 request, 1 response, 2 error response;
//	    bit 7 (0x80) flags an extension block before the body
//	[u32 extension length, extension bytes]   — only when bit 7 is set
//	...  body (error responses carry the error string)
//
// The only extension today is the encoded obs.TraceContext that carries a
// sampled op's trace across nodes; the block itself starts with a version
// byte, so receivers skip contents they do not understand while still
// framing the message correctly.
//
// Multiple requests are pipelined over one connection; a per-connection
// reader goroutine demultiplexes responses by id.

const (
	kindRequest  = 0
	kindResponse = 1
	kindError    = 2

	// kindExtFlag marks a frame carrying a length-delimited extension
	// block (trace context) between header and body.
	kindExtFlag = 0x80
	kindMask    = 0x7f

	frameHeaderLen = 8 + 2 + 1
	// maxFrame guards against corrupt length prefixes.
	maxFrame = 64 << 20
	// maxExt bounds one extension block.
	maxExt = 4096
)

// TCPTransport carries Messages over real TCP sockets. Create one per
// process with NewTCP, then Serve to accept and Call to issue requests.
type TCPTransport struct {
	addr     string
	dialTO   time.Duration
	metrics  atomic.Pointer[tcpMetrics]
	mu       sync.Mutex
	listener net.Listener
	handler  Handler
	conns    map[string]*tcpClientConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// tcpMetrics caches the transport's obs handles; all fields are hot-path
// safe (obs handles are lock-free).
type tcpMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	dials, dialErrors   *obs.Counter
	callLat             *obs.Histogram
}

// Instrument wires the transport into an obs registry: frame and byte
// counters in both directions, dial counters, and a per-RPC latency
// histogram covering the full call round trip. Safe to call at any time;
// pre-existing pooled connections pick the metrics up on their next frame.
func (t *TCPTransport) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	t.metrics.Store(&tcpMetrics{
		framesIn:   r.Counter("transport.frames_in"),
		framesOut:  r.Counter("transport.frames_out"),
		bytesIn:    r.Counter("transport.bytes_in"),
		bytesOut:   r.Counter("transport.bytes_out"),
		dials:      r.Counter("transport.dials"),
		dialErrors: r.Counter("transport.dial_errors"),
		callLat:    r.Histogram("transport.call"),
	})
}

// frameIn/frameOut record one frame of n body bytes (plus framing).
func (m *tcpMetrics) frameIn(bodyLen int) {
	if m != nil {
		m.framesIn.Inc()
		m.bytesIn.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

func (m *tcpMetrics) frameOut(bodyLen int) {
	if m != nil {
		m.framesOut.Inc()
		m.bytesOut.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

// NewTCP returns a transport that will listen on addr when Serve is called.
// addr may be ":0"; Addr reports the bound address after Serve.
func NewTCP(addr string) *TCPTransport {
	return &TCPTransport{
		addr:     addr,
		dialTO:   5 * time.Second,
		conns:    map[string]*tcpClientConn{},
		accepted: map[net.Conn]struct{}{},
	}
}

// NewTCPListen binds the listener immediately so Addr returns the real port
// before Serve runs — needed when the bound address doubles as the node's
// cluster identity.
func NewTCPListen(addr string) (*TCPTransport, error) {
	t := NewTCP(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.listener = ln
	return t, nil
}

// Addr returns the listen address (resolved after Serve).
func (t *TCPTransport) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listener != nil {
		return t.listener.Addr().String()
	}
	return t.addr
}

// Serve starts accepting connections, binding the listener first unless
// the transport was created with NewTCPListen.
func (t *TCPTransport) Serve(h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler != nil {
		return fmt.Errorf("transport: Serve called twice")
	}
	if t.listener == nil {
		ln, err := net.Listen("tcp", t.addr)
		if err != nil {
			return err
		}
		t.listener = ln
	}
	t.handler = h
	t.wg.Add(1)
	go t.acceptLoop(t.listener, h)
	return nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn, h)
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
		}()
	}
}

func (t *TCPTransport) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	var writeMu sync.Mutex
	from := conn.RemoteAddr().String()
	for {
		id, op, kind, ext, body, err := readFrame(conn)
		if err != nil {
			return
		}
		t.metrics.Load().frameIn(len(body))
		if kind != kindRequest {
			return // protocol violation
		}
		go func() {
			resp, herr := h(context.Background(), from, Message{Op: op, Body: body, Trace: ext})
			m := t.metrics.Load()
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				errBody := []byte(herr.Error())
				m.frameOut(len(errBody))
				writeFrame(conn, id, op, kindError, nil, errBody)
				return
			}
			m.frameOut(len(resp.Body))
			writeFrame(conn, id, resp.Op, kindResponse, nil, resp.Body)
		}()
	}
}

// Call implements Caller.
func (t *TCPTransport) Call(ctx context.Context, addr string, req Message) (Message, error) {
	cc, err := t.clientConn(addr)
	if err != nil {
		return Message{}, err
	}
	return cc.call(ctx, req)
}

func (t *TCPTransport) clientConn(addr string) (*tcpClientConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if cc := t.conns[addr]; cc != nil && !cc.dead() {
		t.mu.Unlock()
		return cc, nil
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, t.dialTO)
	if err != nil {
		if m := t.metrics.Load(); m != nil {
			m.dialErrors.Inc()
		}
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if m := t.metrics.Load(); m != nil {
		m.dials.Inc()
	}
	cc := newTCPClientConn(conn, &t.metrics)

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		cc.close(ErrClosed)
		return nil, ErrClosed
	}
	if existing := t.conns[addr]; existing != nil && !existing.dead() {
		cc.close(ErrClosed) // lost the race; reuse the winner
		return existing, nil
	}
	t.conns[addr] = cc
	return cc, nil
}

// Close stops the listener and closes pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.listener
	conns := t.conns
	t.conns = map[string]*tcpClientConn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cc := range conns {
		cc.close(ErrClosed)
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// tcpClientConn is one pooled outbound connection with pipelining.
type tcpClientConn struct {
	conn    net.Conn
	metrics *atomic.Pointer[tcpMetrics]
	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error
}

type result struct {
	msg Message
	err error
}

func newTCPClientConn(conn net.Conn, metrics *atomic.Pointer[tcpMetrics]) *tcpClientConn {
	if metrics == nil {
		metrics = new(atomic.Pointer[tcpMetrics])
	}
	cc := &tcpClientConn{conn: conn, metrics: metrics, pending: map[uint64]chan result{}}
	go cc.readLoop()
	return cc
}

func (cc *tcpClientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

func (cc *tcpClientConn) call(ctx context.Context, req Message) (Message, error) {
	m := cc.metrics.Load()
	if m != nil {
		start := time.Now()
		defer func() { m.callLat.Observe(time.Since(start)) }()
	}
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return Message{}, err
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ch
	cc.mu.Unlock()

	m.frameOut(len(req.Body))
	cc.writeMu.Lock()
	err := writeFrame(cc.conn, id, req.Op, kindRequest, req.Trace, req.Body)
	cc.writeMu.Unlock()
	if err != nil {
		cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
		return Message{}, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return Message{}, ctx.Err()
	}
}

func (cc *tcpClientConn) readLoop() {
	for {
		id, op, kind, _, body, err := readFrame(cc.conn)
		if err != nil {
			cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		cc.metrics.Load().frameIn(len(body))
		cc.mu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ch == nil {
			continue // caller gave up
		}
		switch kind {
		case kindResponse:
			ch <- result{msg: Message{Op: op, Body: body}}
		case kindError:
			ch <- result{err: &RemoteError{Msg: string(body)}}
		default:
			ch <- result{err: fmt.Errorf("transport: bad frame kind %d", kind)}
		}
	}
}

func (cc *tcpClientConn) close(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = map[uint64]chan result{}
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

func writeFrame(conn net.Conn, id uint64, op uint16, kind byte, ext, body []byte) error {
	if len(ext) > maxExt {
		// Never corrupt the stream over an oversized extension; the trace
		// is advisory, the request is not.
		ext = nil
	}
	extLen := 0
	if len(ext) > 0 {
		kind |= kindExtFlag
		extLen = 4 + len(ext)
	}
	frame := make([]byte, 4+frameHeaderLen+extLen+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(frameHeaderLen+extLen+len(body)))
	binary.LittleEndian.PutUint64(frame[4:], id)
	binary.LittleEndian.PutUint16(frame[12:], op)
	frame[14] = kind
	off := 15
	if extLen > 0 {
		binary.LittleEndian.PutUint32(frame[off:], uint32(len(ext)))
		copy(frame[off+4:], ext)
		off += extLen
	}
	copy(frame[off:], body)
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn) (id uint64, op uint16, kind byte, ext, body []byte, err error) {
	var lenBuf [4]byte
	if err = readFull(conn, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if err = readFull(conn, buf); err != nil {
		return
	}
	id = binary.LittleEndian.Uint64(buf)
	op = binary.LittleEndian.Uint16(buf[8:])
	kind = buf[10]
	rest := buf[frameHeaderLen:]
	if kind&kindExtFlag != 0 {
		kind &= kindMask
		if len(rest) < 4 {
			err = fmt.Errorf("transport: truncated extension block")
			return
		}
		en := binary.LittleEndian.Uint32(rest)
		if en > maxExt || int(en) > len(rest)-4 {
			err = fmt.Errorf("transport: bad extension length %d", en)
			return
		}
		ext = rest[4 : 4+en]
		rest = rest[4+en:]
	}
	body = rest
	return
}
