package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/obs"
)

// TCP wire format, one frame per request or response (little endian):
//
//	u32 frame length (bytes after this field)
//	u64 request id (echoed in the response)
//	u16 opcode
//	u8  kind: 0 request, 1 response, 2 error response;
//	    bit 7 (0x80) flags an extension block before the body
//	[u32 extension length, extension bytes]   — only when bit 7 is set
//	...  body (error responses carry the error string)
//
// The only extension today is the encoded obs.TraceContext that carries a
// sampled op's trace across nodes; the block itself starts with a version
// byte, so receivers skip contents they do not understand while still
// framing the message correctly.
//
// Multiple requests are pipelined over one connection; a per-connection
// reader goroutine demultiplexes responses by id.

const (
	kindRequest  = 0
	kindResponse = 1
	kindError    = 2

	// kindExtFlag marks a frame carrying a length-delimited extension
	// block (trace context) between header and body.
	kindExtFlag = 0x80
	kindMask    = 0x7f

	frameHeaderLen = 8 + 2 + 1
	// maxFrame guards against corrupt length prefixes.
	maxFrame = 64 << 20
	// maxExt bounds one extension block.
	maxExt = 4096
)

// TCPTransport carries Messages over real TCP sockets. Create one per
// process with NewTCP, then Serve to accept and Call to issue requests.
type TCPTransport struct {
	addr     string
	dialTO   time.Duration
	metrics  atomic.Pointer[tcpMetrics]
	mu       sync.Mutex
	listener net.Listener
	handler  Handler
	conns    map[string]*tcpClientConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// tcpMetrics caches the transport's obs handles; all fields are hot-path
// safe (obs handles are lock-free).
type tcpMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	dials, dialErrors   *obs.Counter
	flushes             *obs.Counter
	callLat             *obs.Histogram
}

// Instrument wires the transport into an obs registry: frame and byte
// counters in both directions, dial counters, and a per-RPC latency
// histogram covering the full call round trip. Safe to call at any time;
// pre-existing pooled connections pick the metrics up on their next frame.
func (t *TCPTransport) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	t.metrics.Store(&tcpMetrics{
		framesIn:   r.Counter("transport.frames_in"),
		framesOut:  r.Counter("transport.frames_out"),
		bytesIn:    r.Counter("transport.bytes_in"),
		bytesOut:   r.Counter("transport.bytes_out"),
		dials:      r.Counter("transport.dials"),
		dialErrors: r.Counter("transport.dial_errors"),
		flushes:    r.Counter("transport.flushes"),
		callLat:    r.Histogram("transport.call"),
	})
}

// frameIn/frameOut record one frame of n body bytes (plus framing).
func (m *tcpMetrics) frameIn(bodyLen int) {
	if m != nil {
		m.framesIn.Inc()
		m.bytesIn.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

func (m *tcpMetrics) frameOut(bodyLen int) {
	if m != nil {
		m.framesOut.Inc()
		m.bytesOut.Add(uint64(4 + frameHeaderLen + bodyLen))
	}
}

// NewTCP returns a transport that will listen on addr when Serve is called.
// addr may be ":0"; Addr reports the bound address after Serve.
func NewTCP(addr string) *TCPTransport {
	return &TCPTransport{
		addr:     addr,
		dialTO:   5 * time.Second,
		conns:    map[string]*tcpClientConn{},
		accepted: map[net.Conn]struct{}{},
	}
}

// NewTCPListen binds the listener immediately so Addr returns the real port
// before Serve runs — needed when the bound address doubles as the node's
// cluster identity.
func NewTCPListen(addr string) (*TCPTransport, error) {
	t := NewTCP(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.listener = ln
	return t, nil
}

// Addr returns the listen address (resolved after Serve).
func (t *TCPTransport) Addr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listener != nil {
		return t.listener.Addr().String()
	}
	return t.addr
}

// Serve starts accepting connections, binding the listener first unless
// the transport was created with NewTCPListen.
func (t *TCPTransport) Serve(h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.handler != nil {
		return fmt.Errorf("transport: Serve called twice")
	}
	if t.listener == nil {
		ln, err := net.Listen("tcp", t.addr)
		if err != nil {
			return err
		}
		t.listener = ln
	}
	t.handler = h
	t.wg.Add(1)
	go t.acceptLoop(t.listener, h)
	return nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn, h)
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
		}()
	}
}

func (t *TCPTransport) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	fw := newFrameWriter(conn, &t.metrics)
	from := conn.RemoteAddr().String()
	for {
		id, op, kind, ext, body, bufp, err := readFramePooled(conn)
		if err != nil {
			return
		}
		t.metrics.Load().frameIn(len(body))
		if kind != kindRequest {
			putFrameBuf(bufp)
			return // protocol violation
		}
		go func() {
			// The request frame is pooled: body and ext die when this
			// goroutine returns (see the Handler body-ownership contract),
			// after the response — which must not alias them — is written.
			defer putFrameBuf(bufp)
			resp, herr := h(context.Background(), from, Message{Op: op, Body: body, Trace: ext})
			m := t.metrics.Load()
			if herr != nil {
				errBody := []byte(herr.Error())
				m.frameOut(len(errBody))
				fw.writeFrame(id, op, kindError, nil, errBody)
				return
			}
			m.frameOut(len(resp.Body))
			fw.writeFrame(id, resp.Op, kindResponse, nil, resp.Body)
		}()
	}
}

// Call implements Caller.
func (t *TCPTransport) Call(ctx context.Context, addr string, req Message) (Message, error) {
	cc, err := t.clientConn(addr)
	if err != nil {
		return Message{}, err
	}
	return cc.call(ctx, req)
}

func (t *TCPTransport) clientConn(addr string) (*tcpClientConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if cc := t.conns[addr]; cc != nil && !cc.dead() {
		t.mu.Unlock()
		return cc, nil
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, t.dialTO)
	if err != nil {
		if m := t.metrics.Load(); m != nil {
			m.dialErrors.Inc()
		}
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if m := t.metrics.Load(); m != nil {
		m.dials.Inc()
	}
	cc := newTCPClientConn(conn, &t.metrics)

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		cc.close(ErrClosed)
		return nil, ErrClosed
	}
	if existing := t.conns[addr]; existing != nil && !existing.dead() {
		cc.close(ErrClosed) // lost the race; reuse the winner
		return existing, nil
	}
	t.conns[addr] = cc
	return cc, nil
}

// Close stops the listener and closes pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.listener
	conns := t.conns
	t.conns = map[string]*tcpClientConn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cc := range conns {
		cc.close(ErrClosed)
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// tcpClientConn is one pooled outbound connection with pipelining.
type tcpClientConn struct {
	conn    net.Conn
	metrics *atomic.Pointer[tcpMetrics]
	fw      *frameWriter
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error
}

type result struct {
	msg Message
	err error
}

func newTCPClientConn(conn net.Conn, metrics *atomic.Pointer[tcpMetrics]) *tcpClientConn {
	if metrics == nil {
		metrics = new(atomic.Pointer[tcpMetrics])
	}
	cc := &tcpClientConn{
		conn:    conn,
		metrics: metrics,
		fw:      newFrameWriter(conn, metrics),
		pending: map[uint64]chan result{},
	}
	go cc.readLoop()
	return cc
}

func (cc *tcpClientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

func (cc *tcpClientConn) call(ctx context.Context, req Message) (Message, error) {
	m := cc.metrics.Load()
	if m != nil {
		start := time.Now()
		defer func() { m.callLat.Observe(time.Since(start)) }()
	}
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return Message{}, err
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ch
	cc.mu.Unlock()

	m.frameOut(len(req.Body))
	err := cc.fw.writeFrame(id, req.Op, kindRequest, req.Trace, req.Body)
	if err != nil {
		cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
		return Message{}, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return Message{}, ctx.Err()
	}
}

func (cc *tcpClientConn) readLoop() {
	for {
		id, op, kind, _, body, err := readFrame(cc.conn)
		if err != nil {
			cc.close(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		cc.metrics.Load().frameIn(len(body))
		cc.mu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ch == nil {
			continue // caller gave up
		}
		switch kind {
		case kindResponse:
			ch <- result{msg: Message{Op: op, Body: body}}
		case kindError:
			ch <- result{err: &RemoteError{Msg: string(body)}}
		default:
			ch <- result{err: fmt.Errorf("transport: bad frame kind %d", kind)}
		}
	}
}

func (cc *tcpClientConn) close(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = map[uint64]chan result{}
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// framePool recycles flat frame buffers: the server's inbound request frames
// and one-shot writeFrame assemblies. Buffers above maxPooledFrame are not
// returned so a single 64 MB frame cannot pin megabytes of idle memory.
var framePool = sync.Pool{New: func() any { p := make([]byte, 0, 4096); return &p }}

const maxPooledFrame = 1 << 20

// getFrameBuf returns a pooled buffer with capacity for at least n bytes,
// length zero.
func getFrameBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

// putFrameBuf recycles a buffer obtained from getFrameBuf. The caller must
// not touch the slice (or anything aliasing it) afterwards.
func putFrameBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledFrame {
		return
	}
	*bp = (*bp)[:0]
	framePool.Put(bp)
}

// frameWriter serialises frame writes onto one connection through a shared
// buffered writer, coalescing back-to-back pipelined frames into fewer
// syscalls. Writers announce themselves by incrementing queued BEFORE taking
// the lock; after writing, the writer that decrements queued to zero flushes.
// A writer that sees queued > 0 skips the flush knowing a later writer —
// already committed to taking the lock — will carry its bytes, so every frame
// is flushed by someone and an idle connection never holds buffered data.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	queued  atomic.Int32
	metrics *atomic.Pointer[tcpMetrics]
}

func newFrameWriter(conn net.Conn, metrics *atomic.Pointer[tcpMetrics]) *frameWriter {
	if metrics == nil {
		metrics = new(atomic.Pointer[tcpMetrics])
	}
	return &frameWriter{bw: bufio.NewWriterSize(conn, 32<<10), metrics: metrics}
}

func (w *frameWriter) writeFrame(id uint64, op uint16, kind byte, ext, body []byte) error {
	w.queued.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	err := writeFrameTo(w.bw, id, op, kind, ext, body)
	if w.queued.Add(-1) == 0 {
		if ferr := w.bw.Flush(); err == nil {
			err = ferr
		}
		if m := w.metrics.Load(); m != nil {
			m.flushes.Inc()
		}
	}
	return err
}

// writeFrameTo encodes one frame into bw: a stack-built header followed by
// the ext and body slices, so no flat frame buffer is assembled.
func writeFrameTo(bw *bufio.Writer, id uint64, op uint16, kind byte, ext, body []byte) error {
	if len(ext) > maxExt {
		// Never corrupt the stream over an oversized extension; the trace
		// is advisory, the request is not.
		ext = nil
	}
	extLen := 0
	if len(ext) > 0 {
		kind |= kindExtFlag
		extLen = 4 + len(ext)
	}
	var hdr [4 + frameHeaderLen + 4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(frameHeaderLen+extLen+len(body)))
	binary.LittleEndian.PutUint64(hdr[4:], id)
	binary.LittleEndian.PutUint16(hdr[12:], op)
	hdr[14] = kind
	n := 4 + frameHeaderLen
	if extLen > 0 {
		binary.LittleEndian.PutUint32(hdr[n:], uint32(len(ext)))
		n += 4
		if _, err := bw.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(ext); err != nil {
			return err
		}
	} else if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := bw.Write(body)
	return err
}

// writeFrame writes one frame directly to conn as a single Write, assembled
// in a pooled buffer. The data path uses frameWriter; this remains for
// one-shot writers and tests.
func writeFrame(conn net.Conn, id uint64, op uint16, kind byte, ext, body []byte) error {
	if len(ext) > maxExt {
		ext = nil
	}
	extLen := 0
	if len(ext) > 0 {
		kind |= kindExtFlag
		extLen = 4 + len(ext)
	}
	total := 4 + frameHeaderLen + extLen + len(body)
	bp := getFrameBuf(total)
	frame := (*bp)[:total]
	binary.LittleEndian.PutUint32(frame, uint32(frameHeaderLen+extLen+len(body)))
	binary.LittleEndian.PutUint64(frame[4:], id)
	binary.LittleEndian.PutUint16(frame[12:], op)
	frame[14] = kind
	off := 15
	if extLen > 0 {
		binary.LittleEndian.PutUint32(frame[off:], uint32(len(ext)))
		copy(frame[off+4:], ext)
		off += extLen
	}
	copy(frame[off:], body)
	_, err := conn.Write(frame)
	*bp = frame
	putFrameBuf(bp)
	return err
}

// parseFrame splits a received frame (everything after the length prefix)
// into its fields; ext and body alias buf.
func parseFrame(buf []byte) (id uint64, op uint16, kind byte, ext, body []byte, err error) {
	id = binary.LittleEndian.Uint64(buf)
	op = binary.LittleEndian.Uint16(buf[8:])
	kind = buf[10]
	rest := buf[frameHeaderLen:]
	if kind&kindExtFlag != 0 {
		kind &= kindMask
		if len(rest) < 4 {
			err = fmt.Errorf("transport: truncated extension block")
			return
		}
		en := binary.LittleEndian.Uint32(rest)
		if en > maxExt || int(en) > len(rest)-4 {
			err = fmt.Errorf("transport: bad extension length %d", en)
			return
		}
		ext = rest[4 : 4+en]
		rest = rest[4+en:]
	}
	body = rest
	return
}

// readFrame reads one frame into a fresh exact-size allocation; ext and body
// alias it. Used where the frame's bytes outlive the read loop iteration —
// the client readLoop hands body to the caller, which owns it from then on.
func readFrame(conn net.Conn) (id uint64, op uint16, kind byte, ext, body []byte, err error) {
	var lenBuf [4]byte
	if err = readFull(conn, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	buf := make([]byte, n)
	if err = readFull(conn, buf); err != nil {
		return
	}
	return parseFrame(buf)
}

// readFramePooled reads one frame into a pooled buffer; ext and body alias
// *bufp, which the caller must hand back via putFrameBuf once every byte of
// the frame is dead. bufp is nil on error.
func readFramePooled(conn net.Conn) (id uint64, op uint16, kind byte, ext, body []byte, bufp *[]byte, err error) {
	var lenBuf [4]byte
	if err = readFull(conn, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", n)
		return
	}
	bufp = getFrameBuf(int(n))
	buf := (*bufp)[:n]
	*bufp = buf
	if err = readFull(conn, buf); err != nil {
		putFrameBuf(bufp)
		bufp = nil
		return
	}
	id, op, kind, ext, body, err = parseFrame(buf)
	if err != nil {
		putFrameBuf(bufp)
		bufp = nil
	}
	return
}
