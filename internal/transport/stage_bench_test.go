package transport

import (
	"context"
	"sync"
	"testing"
)

// benchEcho measures closed-loop echo throughput over conns connections
// against a server in the given stage mode. Run with -cpuprofile to see
// where the request path spends its time.
func benchEcho(b *testing.B, cfg StageConfig, conns int) {
	srv := NewTCPStaged("127.0.0.1:0", cfg)
	err := srv.Serve(func(_ context.Context, _ string, req Message) (Message, error) {
		return Message{Op: req.Op, Body: req.Body}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	clients := make([]*TCPTransport, conns)
	for i := range clients {
		clients[i] = NewTCP("")
		if _, err := clients[i].Call(context.Background(), addr, Message{Op: 1, Body: []byte("warm")}); err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	body := make([]byte, 128)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / conns
	for i := range clients {
		wg.Add(1)
		go func(c *TCPTransport) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := c.Call(context.Background(), addr, Message{Op: 1, Body: body}); err != nil {
					b.Error(err)
					return
				}
			}
		}(clients[i])
	}
	wg.Wait()
}

func BenchmarkEchoStaged100(b *testing.B) {
	benchEcho(b, StageConfig{Workers: 256, DispatchDepth: 1 << 15}, 100)
}

func BenchmarkEchoSpawn100(b *testing.B) {
	benchEcho(b, StageConfig{Spawn: true}, 100)
}
