//go:build linux

package transport

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"syscall"
)

// On Linux the reader stage is a pool of epoll event loops: each shard owns
// one epoll instance and multiplexes its share of the connections, so 10k
// idle connections cost 10k fds but only Readers goroutines. Sockets stay
// in non-blocking mode (the Go runtime already sets that) and we read
// through syscall.RawConn with a callback that always reports ready, which
// keeps the runtime's netpoller from parking the goroutine — readiness is
// our epoll's business, not the runtime's.

type readerPool struct {
	shards []*pollShard
	next   uint64 // round-robin assignment; mutated under each add's shard lock-free path
	mu     sync.Mutex
}

type pollShard struct {
	srv   *stagedServer
	epfd  int
	wakeR int // read end of the self-pipe used to interrupt EpollWait
	wakeW int

	mu     sync.Mutex
	conns  map[int]*sconn
	closed bool
}

func newReaderPool(s *stagedServer, n int) (*readerPool, error) {
	rp := &readerPool{shards: make([]*pollShard, 0, n)}
	for i := 0; i < n; i++ {
		sh, err := newPollShard(s)
		if err != nil {
			rp.close()
			return nil, err
		}
		rp.shards = append(rp.shards, sh)
		s.readerWG.Add(1)
		s.t.wg.Add(1)
		s.t.goros.Add(1)
		go sh.loop()
	}
	return rp, nil
}

func newPollShard(s *stagedServer) (*pollShard, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("transport: epoll_create1: %w", err)
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("transport: pipe2: %w", err)
	}
	sh := &pollShard{srv: s, epfd: epfd, wakeR: pipe[0], wakeW: pipe[1], conns: map[int]*sconn{}}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(sh.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, sh.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, fmt.Errorf("transport: epoll_ctl(wake): %w", err)
	}
	return sh, nil
}

// add registers a connection on the next shard round-robin.
func (rp *readerPool) add(sc *sconn) error {
	tc, ok := sc.conn.(syscall.Conn)
	if !ok {
		return fmt.Errorf("transport: %T does not expose a raw fd", sc.conn)
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return err
	}
	fd := -1
	if cerr := rc.Control(func(f uintptr) { fd = int(f) }); cerr != nil {
		return cerr
	}
	sc.rc, sc.fd = rc, fd

	rp.mu.Lock()
	sh := rp.shards[rp.next%uint64(len(rp.shards))]
	rp.next++
	rp.mu.Unlock()
	return sh.register(sc)
}

func (rp *readerPool) close() {
	for _, sh := range rp.shards {
		sh.shutdown()
	}
}

func (sh *pollShard) register(sc *sconn) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	// Detach must remove the epoll registration and the map entry BEFORE
	// the fd is closed, or a recycled fd number could alias a dead sconn.
	// Assigned inside the critical section that publishes the sconn: every
	// later holder (the loop's map lookup, goroutines spawned after add
	// returns) observes it.
	sc.detach = func() { sh.forget(sc) }
	sh.conns[sc.fd] = sc
	sh.mu.Unlock()
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(sc.fd)}
	if err := syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_ADD, sc.fd, &ev); err != nil {
		sh.forget(sc)
		return err
	}
	return nil
}

// forget is the detach hook: it unmaps the connection and deregisters its
// fd while the fd is still open.
func (sh *pollShard) forget(sc *sconn) {
	sh.mu.Lock()
	if cur, ok := sh.conns[sc.fd]; ok && cur == sc {
		delete(sh.conns, sc.fd)
	}
	sh.mu.Unlock()
	// Best-effort: the fd may already be mid-close elsewhere.
	syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_DEL, sc.fd, nil)
}

// shutdown asks the loop to exit via the self-pipe; the loop owns the fds
// and closes them on the way out.
func (sh *pollShard) shutdown() {
	sh.mu.Lock()
	already := sh.closed
	sh.closed = true
	sh.mu.Unlock()
	if already {
		return
	}
	var one = [1]byte{1}
	syscall.Write(sh.wakeW, one[:])
}

func (sh *pollShard) loop() {
	s := sh.srv
	defer s.readerWG.Done()
	defer s.t.wg.Done()
	defer s.t.goros.Add(-1)
	events := make([]syscall.EpollEvent, 128)
	// Poll-then-park: after draining ready events the loop burns a bounded
	// amount of "spin gas" — non-blocking polls with a Gosched between them
	// — before falling back to a blocking EpollWait. A blocking wait parks
	// this goroutine's OS thread deep in the kernel, and re-acquiring a P
	// on wakeup under a busy scheduler costs enough to land in request
	// latency; the short spin catches the common case where the next burst
	// of requests arrives within a scheduler quantum of the last. The gas
	// budget must stay small: an unbounded Gosched spin keeps the run queue
	// permanently non-empty, the scheduler never does a blocking netpoll,
	// and every other socket in the process (clients, peers) waits for
	// sysmon's 10ms fallback poll — measured as a 4x throughput collapse.
	const spinGas = 256
	gas := spinGas
	for {
		timeout := 0
		if gas <= 0 {
			timeout = -1
		}
		n, err := syscall.EpollWait(sh.epfd, events, timeout)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		if n == 0 {
			gas--
			runtime.Gosched()
			continue
		}
		gas = spinGas
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == sh.wakeR {
				var buf [8]byte
				syscall.Read(sh.wakeR, buf[:])
				sh.mu.Lock()
				closed := sh.closed
				sh.mu.Unlock()
				if closed {
					syscall.Close(sh.epfd)
					syscall.Close(sh.wakeR)
					syscall.Close(sh.wakeW)
					return
				}
				continue
			}
			sh.mu.Lock()
			sc := sh.conns[fd]
			sh.mu.Unlock()
			if sc != nil {
				sc.readReady()
			}
		}
	}
}

// readReady drains everything the socket has buffered through the frame
// state machine. Level-triggered epoll re-arms automatically, so stopping
// at errWouldBlock is enough.
func (sc *sconn) readReady() {
	err := sc.pump(sc.rawRead)
	if err == nil || errors.Is(err, errWouldBlock) {
		return
	}
	sc.releaseReadBuf()
	sc.shutdown()
}

// rawRead reads directly from the non-blocking socket. The RawConn callback
// always returns true so the runtime never parks us on its own netpoller —
// EAGAIN surfaces as errWouldBlock and the epoll shard decides when to
// retry.
func (sc *sconn) rawRead(p []byte) (int, error) {
	var n int
	var rerr error
	cerr := sc.rc.Read(func(fd uintptr) bool {
		for {
			n, rerr = syscall.Read(int(fd), p)
			if rerr == syscall.EINTR {
				continue
			}
			return true
		}
	})
	if cerr != nil {
		return 0, cerr
	}
	if rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK {
		return 0, errWouldBlock
	}
	if rerr != nil {
		return 0, rerr
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}
