//go:build !race

package transport

// Allocation budget for a pooled frame round trip: once the frame pool is
// warm, writing a frame through the coalescing frameWriter and reading it
// back with readFramePooled must cost only the small fixed overhead of the
// net.Pipe plumbing, not a per-frame buffer. Excluded under -race
// (instrumentation allocates); the pooled-buffer lifetime is exercised under
// -race by the transport round-trip tests.

import (
	"bufio"
	"bytes"
	"net"
	"sync/atomic"
	"testing"
)

func TestFrameRoundTripAllocBudget(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	var metrics atomic.Pointer[tcpMetrics]
	fw := newFrameWriter(c1, &metrics)
	body := make([]byte, 512)

	type got struct {
		body []byte
		bufp *[]byte
	}
	recv := make(chan got, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, _, _, _, b, bufp, err := readFramePooled(c2)
			if err != nil {
				return
			}
			recv <- got{b, bufp}
		}
	}()

	roundTrip := func() {
		if err := fw.writeFrame(1, 0x0101, kindRequest, nil, body); err != nil {
			t.Fatal(err)
		}
		g := <-recv
		if len(g.body) != len(body) {
			t.Fatalf("got %d-byte body", len(g.body))
		}
		putFrameBuf(g.bufp)
	}
	// Warm the pool (and the pipe goroutines) before measuring.
	roundTrip()

	if n := testing.AllocsPerRun(100, roundTrip); n > 4 {
		t.Errorf("frame round trip allocates %.1f/op, want <= 4", n)
	}

	c1.Close()
	<-done
}

// TestStagedReadPathAllocBudget drives the staged reader's frame state
// machine directly: once the frame pool is warm, assembling a request frame
// from socket-sized chunks and delivering it to the dispatch stage must not
// allocate at all — the hot path at 10k connections.
func TestStagedReadPathAllocBudget(t *testing.T) {
	tr := NewTCP("")
	s := &stagedServer{
		t:        tr,
		cfg:      StageConfig{}.Defaulted(),
		conns:    map[*sconn]struct{}{},
		dispatch: make(chan dItem, 16),
	}
	sc := &sconn{
		srv:  s,
		wq:   make(chan wItem, 4),
		done: make(chan struct{}),
	}

	// One encoded request frame, fed to pump in chunks like a socket would.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrameTo(bw, 1, 0x0101, kindRequest, nil, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	frame := buf.Bytes()

	off := 0
	read := func(p []byte) (int, error) {
		if off == len(frame) {
			return 0, errWouldBlock
		}
		n := copy(p, frame[off:])
		off += n
		return n, nil
	}
	run := func() {
		off = 0
		if err := sc.pump(read); err != errWouldBlock {
			t.Fatalf("pump err = %v", err)
		}
		it := <-s.dispatch
		if it.id != 1 || len(it.body) != 512 {
			t.Fatalf("delivered id %d, %d-byte body", it.id, len(it.body))
		}
		putFrameBuf(it.bufp)
	}
	run() // warm the pool

	if n := testing.AllocsPerRun(100, run); n > 0 {
		t.Errorf("staged read path allocates %.1f/frame warmed, want 0", n)
	}
}
