//go:build !race

package transport

// Allocation budget for a pooled frame round trip: once the frame pool is
// warm, writing a frame through the coalescing frameWriter and reading it
// back with readFramePooled must cost only the small fixed overhead of the
// net.Pipe plumbing, not a per-frame buffer. Excluded under -race
// (instrumentation allocates); the pooled-buffer lifetime is exercised under
// -race by the transport round-trip tests.

import (
	"net"
	"sync/atomic"
	"testing"
)

func TestFrameRoundTripAllocBudget(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()

	var metrics atomic.Pointer[tcpMetrics]
	fw := newFrameWriter(c1, &metrics)
	body := make([]byte, 512)

	type got struct {
		body []byte
		bufp *[]byte
	}
	recv := make(chan got, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, _, _, _, b, bufp, err := readFramePooled(c2)
			if err != nil {
				return
			}
			recv <- got{b, bufp}
		}
	}()

	roundTrip := func() {
		if err := fw.writeFrame(1, 0x0101, kindRequest, nil, body); err != nil {
			t.Fatal(err)
		}
		g := <-recv
		if len(g.body) != len(body) {
			t.Fatalf("got %d-byte body", len(g.body))
		}
		putFrameBuf(g.bufp)
	}
	// Warm the pool (and the pipe goroutines) before measuring.
	roundTrip()

	if n := testing.AllocsPerRun(100, roundTrip); n > 4 {
		t.Errorf("frame round trip allocates %.1f/op, want <= 4", n)
	}

	c1.Close()
	<-done
}
