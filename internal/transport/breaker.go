package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/obs"
)

// ErrBreakerOpen reports a call rejected without touching the network
// because the destination's circuit breaker is open: recent calls failed and
// the cooldown has not elapsed. Callers treat it like ErrUnreachable, except
// that it returns immediately instead of burning the call timeout.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed passes calls through and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probe calls through; a
	// success closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes one node's health breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker; zero selects 5.
	FailureThreshold int
	// OpenFor is the cooldown before an open breaker admits a half-open
	// probe; zero selects 1s.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes in half-open and is the
	// number of probe successes required to close; zero selects 1.
	HalfOpenProbes int

	// now substitutes the clock in tests; nil selects time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker for one destination. All methods
// are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures while closed
	probes    int // probes admitted while half-open
	successes int // probe successes while half-open
	openedAt  time.Time

	// onTransition, when set, observes every state change. It is invoked
	// outside the breaker's lock.
	onTransition func(from, to BreakerState)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state (open breakers whose cooldown elapsed
// still report open until the next Allow admits the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed now. An open breaker whose
// cooldown has elapsed transitions to half-open and admits the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var trans *[2]BreakerState
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) >= b.cfg.OpenFor {
			trans = b.setState(BreakerHalfOpen)
			b.probes = 1
			allowed = true
		}
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			allowed = true
		}
	}
	b.mu.Unlock()
	b.notify(trans)
	return allowed
}

// OnSuccess records a successful call.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	var trans *[2]BreakerState
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			trans = b.setState(BreakerClosed)
		}
	case BreakerOpen:
		// A straggler admitted before the breaker opened succeeded: the
		// node answered, so close early.
		trans = b.setState(BreakerClosed)
	}
	b.mu.Unlock()
	b.notify(trans)
}

// OnFailure records a failed call.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	var trans *[2]BreakerState
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			trans = b.setState(BreakerOpen)
		}
	case BreakerHalfOpen:
		trans = b.setState(BreakerOpen)
	case BreakerOpen:
		// Stragglers keep it open; refresh the cooldown so a flapping
		// node does not get probed at full rate.
		b.openedAt = b.cfg.now()
	}
	b.mu.Unlock()
	b.notify(trans)
}

// setState performs the transition bookkeeping under b.mu and returns the
// transition for notify.
func (b *Breaker) setState(to BreakerState) *[2]BreakerState {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	switch to {
	case BreakerClosed:
		b.fails, b.probes, b.successes = 0, 0, 0
	case BreakerOpen:
		b.openedAt = b.cfg.now()
		b.probes, b.successes = 0, 0
	case BreakerHalfOpen:
		b.probes, b.successes = 0, 0
	}
	return &[2]BreakerState{from, to}
}

func (b *Breaker) notify(trans *[2]BreakerState) {
	if trans == nil {
		return
	}
	if fn := b.onTransition; fn != nil {
		fn(trans[0], trans[1])
	}
}

// HealthCaller wraps a Caller with one circuit breaker per destination so
// fan-outs fail fast to known-dead nodes instead of burning the full call
// timeout. Remote handler errors (the node answered, the request was bad)
// and caller-side cancellations do not count against a node's health; dial
// failures, closed transports and deadline expiries do.
type HealthCaller struct {
	inner Caller
	cfg   BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker

	// OnStateChange, when set, observes every breaker transition. Set it
	// before the first Call; it runs on the calling goroutine.
	OnStateChange func(addr string, from, to BreakerState)

	nFastFails, nOpened  *obs.Counter
	nClosed, nHalfOpened *obs.Counter
	gOpen                *obs.Gauge
}

// NewHealthCaller wraps inner; zero cfg fields select the breaker defaults.
func NewHealthCaller(inner Caller, cfg BreakerConfig) *HealthCaller {
	return &HealthCaller{
		inner:    inner,
		cfg:      cfg.withDefaults(),
		breakers: map[string]*Breaker{},
	}
}

// Instrument registers the breaker metrics: transition counters
// (transport.breaker.opened / half_open / closed), rejected-call counter
// (transport.breaker.fast_fails) and an open-breaker gauge
// (transport.breakers.open). Snapshots of the registry — and therefore
// `sedna-cli stats` — surface per-node health without a new RPC.
func (h *HealthCaller) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	h.nFastFails = r.Counter("transport.breaker.fast_fails")
	h.nOpened = r.Counter("transport.breaker.opened")
	h.nClosed = r.Counter("transport.breaker.closed")
	h.nHalfOpened = r.Counter("transport.breaker.half_open")
	h.gOpen = r.Gauge("transport.breakers.open")
}

// breaker returns the destination's breaker, creating it on first use.
func (h *HealthCaller) breaker(addr string) *Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[addr]
	if b == nil {
		b = NewBreaker(h.cfg)
		b.onTransition = func(from, to BreakerState) { h.transitioned(addr, from, to) }
		h.breakers[addr] = b
	}
	return b
}

func (h *HealthCaller) transitioned(addr string, from, to BreakerState) {
	switch to {
	case BreakerOpen:
		h.nOpened.Inc()
		h.gOpen.Add(1)
	case BreakerHalfOpen:
		h.nHalfOpened.Inc()
		h.gOpen.Add(-1)
	case BreakerClosed:
		h.nClosed.Inc()
		if from == BreakerOpen {
			h.gOpen.Add(-1)
		}
	}
	if fn := h.OnStateChange; fn != nil {
		fn(addr, from, to)
	}
}

// countsAsFailure classifies an error for health purposes.
func countsAsFailure(err error) bool {
	if err == nil {
		return false
	}
	if IsRemote(err) {
		return false // the node answered; the handler rejected the request
	}
	if errors.Is(err, context.Canceled) {
		return false // the caller gave up, not the node
	}
	if errors.Is(err, ErrOverloaded) {
		// A shed is proof of life: the node answered, it just refused the
		// work. Tripping the breaker on pushback would turn a transient
		// queue spike into a synthetic node death.
		return false
	}
	return true
}

// Call implements Caller with breaker gating.
func (h *HealthCaller) Call(ctx context.Context, addr string, req Message) (Message, error) {
	b := h.breaker(addr)
	if !b.Allow() {
		h.nFastFails.Inc()
		return Message{}, fmt.Errorf("%w: %s", ErrBreakerOpen, addr)
	}
	resp, err := h.inner.Call(ctx, addr, req)
	if countsAsFailure(err) {
		b.OnFailure()
	} else {
		b.OnSuccess()
	}
	return resp, err
}

// State returns addr's breaker state (closed when never called).
func (h *HealthCaller) State(addr string) BreakerState {
	h.mu.Lock()
	b := h.breakers[addr]
	h.mu.Unlock()
	if b == nil {
		return BreakerClosed
	}
	return b.State()
}

// States snapshots every tracked destination's state (diagnostics).
func (h *HealthCaller) States() map[string]BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]BreakerState, len(h.breakers))
	for addr, b := range h.breakers {
		out[addr] = b.State()
	}
	return out
}
