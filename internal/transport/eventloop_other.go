//go:build !linux

package transport

import "sync"

// Non-Linux fallback for the reader stage: without epoll we keep one
// blocking reader goroutine per connection, but it feeds the same bounded
// dispatch queue with the same shed semantics, so every stage downstream of
// the read behaves identically to the Linux build. The goroutine bound
// gains a +conns term (see StageConfig.GoroutineBound), which is acceptable
// on development platforms.

type readerPool struct {
	srv *stagedServer

	mu     sync.Mutex
	closed bool
}

func newReaderPool(s *stagedServer, n int) (*readerPool, error) {
	return &readerPool{srv: s}, nil
}

func (rp *readerPool) add(sc *sconn) error {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return ErrClosed
	}
	s := rp.srv
	s.readerWG.Add(1)
	s.t.wg.Add(1)
	s.t.goros.Add(1)
	rp.mu.Unlock()
	go func() {
		defer s.readerWG.Done()
		defer s.t.wg.Done()
		defer s.t.goros.Add(-1)
		err := sc.pump(sc.conn.Read)
		_ = err
		sc.releaseReadBuf()
		sc.shutdown()
	}()
	return nil
}

// close only blocks new registrations; the per-connection readers exit when
// stagedServer.close shuts their connections down.
func (rp *readerPool) close() {
	rp.mu.Lock()
	rp.closed = true
	rp.mu.Unlock()
}
