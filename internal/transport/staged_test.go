package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sedna/internal/obs"
)

// startStaged starts a staged server with explicit stage bounds.
func startStaged(t *testing.T, cfg StageConfig, h Handler) (*TCPTransport, string) {
	t.Helper()
	srv := NewTCPStaged("127.0.0.1:0", cfg)
	if err := srv.Serve(h); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

// TestStagedOutOfOrderMux pins the pipelined response multiplexing under the
// staged path: two requests share one connection, the first blocks in its
// handler until the second has fully returned to the caller, so the second
// response must overtake the first on the wire.
func TestStagedOutOfOrderMux(t *testing.T) {
	slowEntered := make(chan struct{})
	release := make(chan struct{})
	_, addr := startStaged(t, StageConfig{Workers: 4}, func(ctx context.Context, from string, req Message) (Message, error) {
		if req.Op == 1 {
			close(slowEntered)
			<-release
		}
		return Message{Op: req.Op, Body: []byte("ok")}, nil
	})
	cli := NewTCP("")
	defer cli.Close()

	var mu sync.Mutex
	var order []uint16
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cli.Call(context.Background(), addr, Message{Op: 1}); err != nil {
			t.Errorf("slow call: %v", err)
		}
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
	}()
	<-slowEntered // op 1 is parked in a worker; the connection is warm
	if _, err := cli.Call(context.Background(), addr, Message{Op: 2}); err != nil {
		t.Fatalf("fast call: %v", err)
	}
	mu.Lock()
	order = append(order, 2)
	mu.Unlock()
	close(release)
	wg.Wait()

	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("completion order = %v, want [2 1]", order)
	}
}

// TestStagedShedBusy saturates a 1-worker/1-slot pipeline and asserts the
// overflow request comes back as fast ErrOverloaded pushback — and that the
// shed never counts against the node's breaker.
func TestStagedShedBusy(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv, addr := startStaged(t, StageConfig{
		AcceptShards: 1, Readers: 1, Workers: 1, DispatchDepth: 1,
	}, func(ctx context.Context, from string, req Message) (Message, error) {
		entered <- struct{}{}
		<-release
		return Message{Op: req.Op, Body: []byte("served")}, nil
	})
	reg := obs.NewRegistry()
	srv.Instrument(reg)

	cli := NewTCP("")
	defer cli.Close()
	var trips atomic.Int32
	health := NewHealthCaller(cli, BreakerConfig{FailureThreshold: 1})
	health.OnStateChange = func(addr string, from, to BreakerState) {
		if to == BreakerOpen {
			trips.Add(1)
		}
	}

	// Saturate deterministically: c1 occupies the only worker, then c2
	// parks in the one dispatch slot (confirmed via the depth gauge).
	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, results[0] = health.Call(context.Background(), addr, Message{Op: 1}) }()
	<-entered
	wg.Add(1)
	go func() { defer wg.Done(); _, results[1] = health.Call(context.Background(), addr, Message{Op: 2}) }()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauge("transport.stage.dispatch.depth") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the dispatch queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Worker busy + queue full: the probe must come back as fast pushback.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := health.Call(ctx, addr, Message{Op: 99}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe on saturated pipeline: err = %v, want ErrOverloaded", err)
	}
	if sheds := reg.Snapshot().Counter("transport.stage.dispatch.sheds"); sheds < 1 {
		t.Fatalf("transport.stage.dispatch.sheds = %d, want >= 1", sheds)
	}

	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("queued call %d failed: %v", i, err)
		}
	}
	if n := trips.Load(); n != 0 {
		t.Fatalf("breaker tripped %d times on shed load", n)
	}
	if st := health.State(addr); st != BreakerClosed {
		t.Fatalf("breaker state after sheds = %v, want closed", st)
	}
}

// TestShedCtxCancelCleanup cancels a caller while its request is parked in a
// saturated pipeline and asserts the client connection neither leaks the
// pending entry nor double-sends when the response (or busy frame) lands
// after the cancellation.
func TestShedCtxCancelCleanup(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	_, addr := startStaged(t, StageConfig{
		AcceptShards: 1, Readers: 1, Workers: 1, DispatchDepth: 1,
	}, func(ctx context.Context, from string, req Message) (Message, error) {
		entered <- struct{}{}
		<-release
		return Message{Op: req.Op}, nil
	})
	cli := NewTCP("")
	defer cli.Close()

	// Saturate: one call in the worker, one in the queue, both abandoned by
	// their callers after a short deadline; a third fires with an already
	// cancelled context so its busy frame can only land post-cancel.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			if _, err := cli.Call(ctx, addr, Message{Op: 1}); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("abandoned call err = %v", err)
			}
		}()
	}
	<-entered
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.Call(cancelled, addr, Message{Op: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call err = %v", err)
	}
	wg.Wait()
	close(release)

	// Any late frames for the abandoned ids drain through the read loop.
	time.Sleep(50 * time.Millisecond)
	cli.mu.Lock()
	cc := cli.conns[addr]
	cli.mu.Unlock()
	if cc == nil {
		t.Fatal("client connection gone")
	}
	cc.mu.Lock()
	leaked := len(cc.pending)
	cc.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d pending entries leaked after cancellations", leaked)
	}
	// The connection is still framed correctly and usable.
	if _, err := cli.Call(context.Background(), addr, Message{Op: 3}); err != nil {
		t.Fatalf("call after cancellations: %v", err)
	}
}

// TestDialSingleflight asserts concurrent first calls to a cold address
// share one TCP dial instead of racing.
func TestDialSingleflight(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	defer cli.Close()
	reg := obs.NewRegistry()
	cli.Instrument(reg)

	const n = 20
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Call(context.Background(), addr, Message{Op: 1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if dials := reg.Snapshot().Counter("transport.dials"); dials != 1 {
		t.Fatalf("transport.dials = %d, want 1 (singleflight)", dials)
	}
}

// TestProtocolViolationCounted sends a response-kind frame to a server and
// asserts the violation is counted, logged, and fatal to the connection.
func TestProtocolViolationCounted(t *testing.T) {
	srv, addr := startServer(t, echoHandler)
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	var logMu sync.Mutex
	var logged []string
	srv.SetLogf(func(format string, args ...any) {
		logMu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		logMu.Unlock()
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrameTo(bw, 1, 7, kindResponse, nil, []byte("not a request")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection: the read unblocks with EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived a protocol violation")
	}
	if got := reg.Snapshot().Counter("transport.protocol_errors"); got != 1 {
		t.Fatalf("transport.protocol_errors = %d, want 1", got)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("logged %d lines, want exactly 1: %v", len(logged), logged)
	}
}

// TestStagedGoroutineBound floods a small staged pipeline with far more
// in-flight requests than it has workers and asserts the server-side
// goroutine count stays at the fixed pipeline bound instead of scaling with
// in-flight requests (the old spawn behaviour).
func TestStagedGoroutineBound(t *testing.T) {
	cfg := StageConfig{AcceptShards: 1, Readers: 1, Workers: 4, DispatchDepth: 1 << 10}
	release := make(chan struct{})
	entered := make(chan struct{}, 1<<10)
	srv, addr := startStaged(t, cfg, func(ctx context.Context, from string, req Message) (Message, error) {
		entered <- struct{}{}
		<-release
		return Message{Op: req.Op}, nil
	})
	cli := NewTCP("")
	defer cli.Close()

	const inFlight = 200
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call(context.Background(), addr, Message{Op: 1}); err != nil {
				t.Errorf("call: %v", err)
			}
		}()
	}
	// Wait until every worker is parked in the handler, then give the
	// readers a moment to enqueue the rest.
	for i := 0; i < cfg.Workers; i++ {
		<-entered
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	bound := cfg.GoroutineBound(1) // one client connection
	var peak int64
	for time.Now().Before(deadline) {
		if g := srv.ServerGoroutines(); g > peak {
			peak = g
		}
		time.Sleep(time.Millisecond)
		if peak > bound {
			break
		}
	}
	close(release)
	wg.Wait()
	if peak > bound {
		t.Fatalf("server goroutines peaked at %d with %d in-flight requests, want <= %d", peak, inFlight, bound)
	}
	if peak < int64(cfg.Workers) {
		t.Fatalf("server goroutines peaked at %d, below the worker pool size %d — accounting broken?", peak, cfg.Workers)
	}
}

// TestWriteFrameTooLargeLocal asserts oversized frames are rejected before
// any bytes hit the wire, on both write paths.
func TestWriteFrameTooLargeLocal(t *testing.T) {
	huge := make([]byte, maxFrame) // header pushes it over the bound
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrameTo(bw, 1, 1, kindRequest, nil, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeFrameTo err = %v", err)
	}
	bw.Flush()
	if buf.Len() != 0 || bw.Buffered() != 0 {
		t.Fatalf("oversized frame leaked %d+%d bytes onto the wire", buf.Len(), bw.Buffered())
	}

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	var read int64
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		b := make([]byte, 4096)
		for {
			n, err := c2.Read(b)
			read += int64(n)
			if err != nil {
				return
			}
		}
	}()
	fw := newFrameWriter(c1, new(atomic.Pointer[tcpMetrics]))
	if err := fw.writeFrame(1, 1, kindRequest, nil, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("frameWriter.writeFrame err = %v", err)
	}
	c1.Close()
	<-readDone
	if read != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the wire", read)
	}
}

// TestTCPOversizedRequestAndResponse covers the end-to-end halves: an
// oversized request fails locally without killing the connection; an
// oversized response is downgraded server-side to an error reply.
func TestTCPOversizedRequestAndResponse(t *testing.T) {
	huge := make([]byte, maxFrame)
	_, addr := startServer(t, func(ctx context.Context, from string, req Message) (Message, error) {
		if req.Op == 42 {
			return Message{Op: req.Op, Body: huge}, nil
		}
		return Message{Op: req.Op, Body: req.Body}, nil
	})
	cli := NewTCP("")
	defer cli.Close()

	if _, err := cli.Call(context.Background(), addr, Message{Op: 1, Body: huge}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized request err = %v", err)
	}
	// The connection survived the local rejection.
	if _, err := cli.Call(context.Background(), addr, Message{Op: 1, Body: []byte("x")}); err != nil {
		t.Fatalf("call after local rejection: %v", err)
	}
	// An oversized response comes back as a remote error naming the cause.
	_, err := cli.Call(context.Background(), addr, Message{Op: 42})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized response err = %v, want remote error", err)
	}
	if want := "exceeds max size"; !bytes.Contains([]byte(re.Msg), []byte(want)) {
		t.Fatalf("remote error %q does not mention %q", re.Msg, want)
	}
	// And that connection also survived.
	if _, err := cli.Call(context.Background(), addr, Message{Op: 1, Body: []byte("y")}); err != nil {
		t.Fatalf("call after oversized response: %v", err)
	}
}

// TestBusyFrameRoundTrip pins the kindBusy wire encoding.
func TestBusyFrameRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		bw := bufio.NewWriter(c1)
		writeFrameTo(bw, 77, 9, kindBusy, nil, nil)
		bw.Flush()
	}()
	id, op, kind, _, body, err := readFrame(c2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || op != 9 || kind != kindBusy || len(body) != 0 {
		t.Fatalf("frame = id %d op %d kind %d body %q", id, op, kind, body)
	}
}

// TestOverloadedNotCountedAsFailure pins the breaker classification: shed
// responses never open a node's breaker, even at threshold 1.
func TestOverloadedNotCountedAsFailure(t *testing.T) {
	inner := callerFunc(func(ctx context.Context, addr string, req Message) (Message, error) {
		return Message{}, fmt.Errorf("%w: test shed", ErrOverloaded)
	})
	h := NewHealthCaller(inner, BreakerConfig{FailureThreshold: 1})
	for i := 0; i < 10; i++ {
		if _, err := h.Call(context.Background(), "n1", Message{}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("call %d err = %v", i, err)
		}
	}
	if st := h.State("n1"); st != BreakerClosed {
		t.Fatalf("breaker state = %v after 10 sheds, want closed", st)
	}
}

type callerFunc func(ctx context.Context, addr string, req Message) (Message, error)

func (f callerFunc) Call(ctx context.Context, addr string, req Message) (Message, error) {
	return f(ctx, addr, req)
}
