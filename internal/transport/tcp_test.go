package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, h Handler) (*TCPTransport, string) {
	t.Helper()
	srv := NewTCP("127.0.0.1:0")
	if err := srv.Serve(h); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func echoHandler(ctx context.Context, from string, req Message) (Message, error) {
	return Message{Op: req.Op + 1, Body: req.Body}, nil
}

func TestTCPEcho(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	defer cli.Close()
	resp, err := cli.Call(context.Background(), addr, Message{Op: 7, Body: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != 8 || string(resp.Body) != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPEmptyBody(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	defer cli.Close()
	resp, err := cli.Call(context.Background(), addr, Message{Op: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestTCPLargeBody(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	defer cli.Close()
	body := bytes.Repeat([]byte{0xab}, 1<<20)
	resp, err := cli.Call(context.Background(), addr, Message{Op: 1, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatal("large body corrupted")
	}
}

func TestTCPRemoteError(t *testing.T) {
	_, addr := startServer(t, func(ctx context.Context, from string, req Message) (Message, error) {
		return Message{}, errors.New("boom")
	})
	cli := NewTCP("")
	defer cli.Close()
	_, err := cli.Call(context.Background(), addr, Message{Op: 1})
	if err == nil || !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("remote message = %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	cli := NewTCP("")
	defer cli.Close()
	_, err := cli.Call(context.Background(), "127.0.0.1:1", Message{Op: 1})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPContextTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, addr := startServer(t, func(ctx context.Context, from string, req Message) (Message, error) {
		<-block
		return Message{}, nil
	})
	cli := NewTCP("")
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := cli.Call(ctx, addr, Message{Op: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConcurrentPipelining(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	defer cli.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("req-%d", i))
			resp, err := cli.Call(context.Background(), addr, Message{Op: uint16(i), Body: body})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Op != uint16(i)+1 || !bytes.Equal(resp.Body, body) {
				errs[i] = fmt.Errorf("response mismatch for %d: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPServerCloseFailsCalls(t *testing.T) {
	srv, addr := startServer(t, func(ctx context.Context, from string, req Message) (Message, error) {
		time.Sleep(20 * time.Millisecond)
		return req, nil
	})
	cli := NewTCP("")
	defer cli.Close()
	// Warm the pool.
	if _, err := cli.Call(context.Background(), addr, Message{Op: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, addr, Message{Op: 1}); err == nil {
		t.Fatal("call after server close succeeded")
	}
}

func TestTCPClientCloseRejectsCalls(t *testing.T) {
	_, addr := startServer(t, echoHandler)
	cli := NewTCP("")
	cli.Close()
	if _, err := cli.Call(context.Background(), addr, Message{Op: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPFromAddressProvided(t *testing.T) {
	got := make(chan string, 1)
	_, addr := startServer(t, func(ctx context.Context, from string, req Message) (Message, error) {
		got <- from
		return req, nil
	})
	cli := NewTCP("")
	defer cli.Close()
	if _, err := cli.Call(context.Background(), addr, Message{Op: 1}); err != nil {
		t.Fatal(err)
	}
	if from := <-got; from == "" {
		t.Fatal("handler saw empty from address")
	}
}

func TestMuxDispatch(t *testing.T) {
	m := NewMux()
	m.HandleFunc(1, func(ctx context.Context, from string, req Message) (Message, error) {
		return Message{Body: []byte("one")}, nil
	})
	m.HandleFunc(2, func(ctx context.Context, from string, req Message) (Message, error) {
		return Message{Body: []byte("two")}, nil
	})
	resp, err := m.Handle(context.Background(), "", Message{Op: 2})
	if err != nil || string(resp.Body) != "two" {
		t.Fatalf("resp = %+v, err = %v", resp, err)
	}
	if _, err := m.Handle(context.Background(), "", Message{Op: 9}); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPServeTwiceFails(t *testing.T) {
	srv, _ := startServer(t, echoHandler)
	if err := srv.Serve(echoHandler); err == nil {
		t.Fatal("second Serve succeeded")
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv := NewTCP("127.0.0.1:0")
	if err := srv.Serve(echoHandler); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCP("")
	defer cli.Close()
	addr := srv.Addr()
	body := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), addr, Message{Op: 1, Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}
