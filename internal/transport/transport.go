// Package transport provides Sedna's RPC layer: a small request/response
// protocol with numeric opcodes, usable over real TCP (production, the
// cmd/sedna-server binary) or over the in-memory simulated network in
// internal/netsim (tests and the paper-reproduction benchmarks). Both
// implementations satisfy the same interfaces so the rest of the system is
// oblivious to which one carries its traffic.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Message is one RPC payload: an opcode plus an opaque body encoded by the
// caller (every subsystem owns its own binary body format).
type Message struct {
	Op   uint16
	Body []byte
	// Trace is an optional encoded obs.TraceContext riding the request so
	// a sampled op's trace survives process boundaries. Transports carry it
	// opaquely: the simulated network passes the field through in memory,
	// TCP frames it as a versioned, length-delimited extension block (see
	// tcp.go). Empty on untraced requests and on all responses.
	Trace []byte
}

// Handler processes one request and returns the response. from identifies
// the caller's address when known ("" otherwise). Returning an error sends
// a RemoteError to the caller instead of a response body.
//
// Body ownership: req.Body and req.Trace may be backed by a pooled frame
// buffer that the transport recycles once the handler returns, so a handler
// that retains request bytes past its return (queues them, hands them to a
// goroutine, stores them) must copy what it keeps. The response must not
// alias the request body. Response bodies travel in the opposite direction:
// the transport hands the caller of Call ownership of the returned
// Message.Body.
type Handler func(ctx context.Context, from string, req Message) (Message, error)

// Errors surfaced by transports.
var (
	// ErrUnreachable reports that the destination does not exist or the
	// connection could not be established.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrClosed reports use of a closed transport or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrNoHandler reports a request for an opcode with no registered
	// handler.
	ErrNoHandler = errors.New("transport: no handler for opcode")
	// ErrOverloaded reports that the remote server shed the request at a
	// saturated pipeline stage (a kindBusy frame): the node is alive and
	// answering, it just refused this unit of work. Callers treat it as
	// retryable with backoff; it never counts against a node's health
	// breaker.
	ErrOverloaded = errors.New("transport: server overloaded")
	// ErrFrameTooLarge reports a frame whose ext+body would exceed the
	// wire format's maxFrame bound. It is detected before any bytes hit
	// the wire, so the connection stays healthy.
	ErrFrameTooLarge = errors.New("transport: frame exceeds max size")
)

// RemoteError wraps an error string produced by the remote handler.
type RemoteError struct {
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// IsRemote reports whether err is an error produced by the remote handler
// (as opposed to a transport failure such as a timeout); quorum logic
// treats the two very differently — a remote "outdated" reply still counts
// as a live node.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Caller issues RPCs.
type Caller interface {
	// Call sends req to addr and waits for the response, honouring ctx
	// for cancellation and deadline.
	Call(ctx context.Context, addr string, req Message) (Message, error)
}

// Transport combines serving and calling.
type Transport interface {
	Caller
	// Serve registers the handler for this transport's address and
	// starts accepting requests. It may be called once.
	Serve(h Handler) error
	// Addr returns the transport's own address.
	Addr() string
	// Close stops serving and releases resources.
	Close() error
}

// Mux dispatches requests to per-opcode handlers; it is the Handler most
// servers register.
type Mux struct {
	mu       sync.RWMutex
	handlers map[uint16]Handler
}

// NewMux returns an empty Mux.
func NewMux() *Mux { return &Mux{handlers: map[uint16]Handler{}} }

// HandleFunc registers h for opcode op, replacing any previous handler.
func (m *Mux) HandleFunc(op uint16, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[op] = h
}

// Handle implements Handler by dispatching on the opcode.
func (m *Mux) Handle(ctx context.Context, from string, req Message) (Message, error) {
	m.mu.RLock()
	h := m.handlers[req.Op]
	m.mu.RUnlock()
	if h == nil {
		return Message{}, fmt.Errorf("%w %d", ErrNoHandler, req.Op)
	}
	return h(ctx, from, req)
}

// ReadFull is a tiny helper shared by framed implementations.
func readFull(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf)
	return err
}
