package rebalance

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sedna/internal/obs"
	"sedna/internal/ring"
)

// --- planner ---

func TestPlanJoinTargetsJoiner(t *testing.T) {
	tb := ring.NewTable(32, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	snap := tb.Snapshot()

	moves, err := PlanJoin(snap, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("join planned no moves")
	}
	for _, m := range moves {
		if m.To != "d" {
			t.Fatalf("join move targets %q, want joiner", m.To)
		}
		if m.From == "d" {
			t.Fatalf("join move sources the joiner: %v", m)
		}
	}
	// Planning must not touch the input snapshot.
	for v := 0; v < 32; v++ {
		for _, o := range snap.Owners(ring.VNodeID(v)) {
			if o == "d" {
				t.Fatal("PlanJoin mutated the snapshot")
			}
		}
	}
	// Fair share: applying the plan leaves every node within one slot of
	// the others.
	scratch := ring.NewTable(32, 3)
	if err := scratch.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	scratch.AddNode("d")
	after := scratch.Snapshot()
	slots := map[ring.NodeID]int{}
	for v := 0; v < 32; v++ {
		for _, o := range after.Owners(ring.VNodeID(v)) {
			slots[o]++
		}
	}
	min, max := -1, -1
	for _, n := range slots {
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("post-join slot spread %d..%d (%v)", min, max, slots)
	}
}

func TestPlanDrainEmptiesNode(t *testing.T) {
	tb := ring.NewTable(24, 3)
	for _, n := range []ring.NodeID{"a", "b", "c", "d"} {
		tb.AddNode(n)
	}
	snap := tb.Snapshot()

	moves, err := PlanDrain(snap, "d")
	if err != nil {
		t.Fatal(err)
	}
	// Count d's slots in the snapshot; every one must be moved away.
	held := 0
	for v := 0; v < 24; v++ {
		for _, o := range snap.Owners(ring.VNodeID(v)) {
			if o == "d" {
				held++
			}
		}
	}
	if held == 0 {
		t.Fatal("test setup: d holds nothing")
	}
	if len(moves) != held {
		t.Fatalf("drain planned %d moves for %d held slots", len(moves), held)
	}
	for _, m := range moves {
		if m.From != "d" {
			t.Fatalf("drain move sources %q", m.From)
		}
		if m.To == "" || m.To == "d" {
			t.Fatalf("drain move targets %q", m.To)
		}
	}
}

func TestPlanDrainInsufficientCapacity(t *testing.T) {
	tb := ring.NewTable(8, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	// Removing one of three leaves two nodes for three replica slots.
	if _, err := PlanDrain(tb.Snapshot(), "c"); err == nil {
		t.Fatal("drain below replica floor was not rejected")
	}
}

func TestCollapseChains(t *testing.T) {
	in := []ring.Move{
		{VNode: 1, Slot: 0, From: "a", To: ""},
		{VNode: 1, Slot: 0, From: "", To: "b"},
		{VNode: 2, Slot: 1, From: "x", To: "y"},
		{VNode: 3, Slot: 2, From: "p", To: ""},
		{VNode: 3, Slot: 2, From: "", To: "p"}, // collapses to a no-op
	}
	out := collapseChains(in)
	if len(out) != 2 {
		t.Fatalf("collapsed to %d moves: %v", len(out), out)
	}
	if out[0] != (ring.Move{VNode: 1, Slot: 0, From: "a", To: "b"}) {
		t.Fatalf("chain did not collapse: %v", out[0])
	}
	if out[1] != (ring.Move{VNode: 2, Slot: 1, From: "x", To: "y"}) {
		t.Fatalf("plain move altered: %v", out[1])
	}
}

// --- migrator ---

// fakeStore is an in-memory donor store + recipient sink for Migrator tests.
type fakeStore struct {
	mu       sync.Mutex
	rows     map[string][]byte // donor rows
	received map[string][]byte // what Send delivered
	sendErr  error
	sends    int
	dropped  bool
	owned    bool
	dirtied  []ring.VNodeID
}

func newFakeStore(n int) *fakeStore {
	f := &fakeStore{rows: map[string][]byte{}, received: map[string][]byte{}}
	for i := 0; i < n; i++ {
		f.rows[fmt.Sprintf("key-%03d", i)] = []byte(fmt.Sprintf("blob-%03d", i))
	}
	return f
}

func (f *fakeStore) migrator(batchRows int) *Migrator {
	return NewMigrator(MigratorConfig{
		Self: "donor",
		Scan: func(v ring.VNodeID, fn func(string, []byte) bool) {
			f.mu.Lock()
			snap := make(map[string][]byte, len(f.rows))
			for k, b := range f.rows {
				snap[k] = b
			}
			f.mu.Unlock()
			for k, b := range snap {
				if !fn(k, b) {
					return
				}
			}
		},
		Send: func(ctx context.Context, to ring.NodeID, v ring.VNodeID, keys []string, blobs [][]byte) error {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.sends++
			if f.sendErr != nil {
				return f.sendErr
			}
			for i, k := range keys {
				f.received[k] = blobs[i]
			}
			return nil
		},
		Drop: func(v ring.VNodeID) int {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.dropped = true
			n := len(f.rows)
			f.rows = map[string][]byte{}
			return n
		},
		Owned:     func(v ring.VNodeID) bool { f.mu.Lock(); defer f.mu.Unlock(); return f.owned },
		MarkDirty: func(v ring.VNodeID) { f.mu.Lock(); defer f.mu.Unlock(); f.dirtied = append(f.dirtied, v) },
		BatchRows: batchRows,
		Obs:       obs.NewRegistry(),
	})
}

func waitPhase(t *testing.T, m *Migrator, v ring.VNodeID, want Phase) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.DonorStatus(v)
		if ok && st.Phase == want.String() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := m.DonorStatus(v)
	t.Fatalf("vnode %d never reached %s (at %+v)", v, want, st)
	return Status{}
}

func TestMigratorStreamsAndFinishes(t *testing.T) {
	f := newFakeStore(100)
	m := f.migrator(16)
	defer m.Close()

	if err := m.StartDonor(7, "recipient"); err != nil {
		t.Fatal(err)
	}
	st := waitPhase(t, m, 7, PhaseSynced)
	if st.Rows != 100 {
		t.Fatalf("streamed %d rows, want 100", st.Rows)
	}
	if _, dual := m.Recipient(7); !dual {
		t.Fatal("no dual-write target while synced")
	}
	if !m.Party(7) {
		t.Fatal("donor not party to its own migration")
	}

	// A row that lands after the bulk snapshot must go out in the final pass.
	f.mu.Lock()
	f.rows["late-key"] = []byte("late-blob")
	f.mu.Unlock()

	if err := m.FinishDonor(context.Background(), 7, false); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if string(f.received["late-key"]) != "late-blob" {
		t.Fatal("final pass missed the late row")
	}
	if len(f.received) != 101 {
		t.Fatalf("recipient got %d rows, want 101", len(f.received))
	}
	if !f.dropped {
		t.Fatal("donor rows not dropped after finish")
	}
	if _, dual := m.Recipient(7); dual {
		t.Fatal("dual-write target survived finish")
	}
}

func TestMigratorFinishWhileStillOwnedKeepsRows(t *testing.T) {
	f := newFakeStore(10)
	f.owned = true // ring still lists the donor (e.g. replica slot moved instead)
	m := f.migrator(4)
	defer m.Close()
	if err := m.StartDonor(3, "recipient"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, m, 3, PhaseSynced)
	if err := m.FinishDonor(context.Background(), 3, false); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		t.Fatal("dropped rows of a vnode the ring still assigns here")
	}
}

func TestMigratorFinalPassFailureMarksDirty(t *testing.T) {
	f := newFakeStore(6)
	m := f.migrator(8)
	defer m.Close()
	if err := m.StartDonor(5, "recipient"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, m, 5, PhaseSynced)
	f.mu.Lock()
	f.sendErr = errors.New("recipient gone")
	f.mu.Unlock()
	if err := m.FinishDonor(context.Background(), 5, false); err != nil {
		t.Fatal("finish after committed cutover must absorb send failure, got:", err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		t.Fatal("dropped rows although the final pass failed")
	}
	if len(f.dirtied) != 1 || f.dirtied[0] != 5 {
		t.Fatalf("dirtied = %v, want [5]", f.dirtied)
	}
}

func TestMigratorStreamFailureAborts(t *testing.T) {
	f := newFakeStore(20)
	f.sendErr = errors.New("network down")
	m := f.migrator(4)
	defer m.Close()
	if err := m.StartDonor(1, "recipient"); err != nil {
		t.Fatal(err)
	}
	waitPhase(t, m, 1, PhaseAborted)
	if _, dual := m.Recipient(1); dual {
		t.Fatal("aborted migration still dual-writing")
	}
	// Finish with abort clears the state; a fresh StartDonor may retry.
	if err := m.FinishDonor(context.Background(), 1, true); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.sendErr = nil
	f.mu.Unlock()
	if err := m.StartDonor(1, "recipient"); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	waitPhase(t, m, 1, PhaseSynced)
}

func TestMigratorRecipientExpectations(t *testing.T) {
	m := NewMigrator(MigratorConfig{Self: "recipient", Obs: obs.NewRegistry()})
	defer m.Close()
	if m.Expecting(9) {
		t.Fatal("expecting before arm")
	}
	m.ExpectRecipient(9, "donor")
	if !m.Expecting(9) || !m.Party(9) {
		t.Fatal("not expecting after arm")
	}
	in := m.Incoming()
	if len(in) != 1 || in[0].VNode != 9 || in[0].Peer != "donor" {
		t.Fatalf("incoming = %+v", in)
	}
	m.UnexpectRecipient(9)
	if m.Expecting(9) {
		t.Fatal("still expecting after disarm")
	}
}

func TestMigratorBusyOnConflictingTarget(t *testing.T) {
	f := newFakeStore(5)
	m := f.migrator(8)
	defer m.Close()
	if err := m.StartDonor(2, "r1"); err != nil {
		t.Fatal(err)
	}
	if err := m.StartDonor(2, "r1"); err != nil {
		t.Fatal("re-arm same pair must be idempotent:", err)
	}
	if err := m.StartDonor(2, "r2"); !errors.Is(err, ErrMigrationBusy) {
		t.Fatalf("conflicting target: %v", err)
	}
}

// --- orchestrator ---

// fakeHost simulates a 4-node cluster's migration surface in-process.
type fakeHost struct {
	mu       sync.Mutex
	self     ring.NodeID
	table    *ring.Table
	started  []string
	finished []string
	synced   map[string]bool // "node/vnode" -> donor synced
	guards   map[ring.VNodeID]bool
	commits  int
	recovers []ring.VNodeID
}

func (h *fakeHost) key(node ring.NodeID, v ring.VNodeID) string {
	return fmt.Sprintf("%s/%d", node, v)
}

func (h *fakeHost) Self() ring.NodeID { return h.self }
func (h *fakeHost) FreshRing() (*ring.Ring, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.table.Snapshot(), nil
}
func (h *fakeHost) MigrateStart(ctx context.Context, node ring.NodeID, v ring.VNodeID, peer ring.NodeID, recipientRole bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	role := "donor"
	if recipientRole {
		role = "recipient"
	}
	h.started = append(h.started, fmt.Sprintf("%s:%s:%d", node, role, v))
	if !recipientRole {
		h.synced[h.key(node, v)] = true // instant bulk copy
	}
	return nil
}
func (h *fakeHost) MigrateStatus(ctx context.Context, node ring.NodeID, v ring.VNodeID) (Status, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.synced[h.key(node, v)] {
		return Status{VNode: v, Phase: PhaseSynced.String()}, nil
	}
	return Status{VNode: v, Phase: PhaseStreaming.String()}, nil
}
func (h *fakeHost) MigrateFinish(ctx context.Context, node ring.NodeID, v ring.VNodeID, abort, recipientRole bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	role := "donor"
	if recipientRole {
		role = "recipient"
	}
	h.finished = append(h.finished, fmt.Sprintf("%s:%s:%d:abort=%v", node, role, v, abort))
	return nil
}
func (h *fakeHost) Commit(v ring.VNodeID, slot int, from, to ring.NodeID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.commits++
	return h.table.MoveSlot(v, slot, from, to)
}
func (h *fakeHost) Guard(v ring.VNodeID) (func(), error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.guards[v] {
		return nil, fmt.Errorf("guard held: vnode %d", v)
	}
	h.guards[v] = true
	return func() {
		h.mu.Lock()
		delete(h.guards, v)
		h.mu.Unlock()
	}, nil
}
func (h *fakeHost) GuardHeld(err error) bool {
	return err != nil && len(err.Error()) >= 10 && err.Error()[:10] == "guard held"
}
func (h *fakeHost) Recover(v ring.VNodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recovers = append(h.recovers, v)
}

func newFakeHost(self ring.NodeID) *fakeHost {
	tb := ring.NewTable(16, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	return &fakeHost{self: self, table: tb, synced: map[string]bool{}, guards: map[ring.VNodeID]bool{}}
}

func waitCampaign(t *testing.T, r *Rebalancer) Campaign {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, ok := r.Status()
		if ok && c.State != "running" {
			return c
		}
		time.Sleep(5 * time.Millisecond)
	}
	c, _ := r.Status()
	t.Fatalf("campaign never finished: %+v", c)
	return Campaign{}
}

func TestRebalancerJoinCampaign(t *testing.T) {
	h := newFakeHost("d")
	r := NewRebalancer(RebalancerConfig{Host: h, PollEvery: time.Millisecond, Obs: obs.NewRegistry()})
	if err := r.StartJoin(); err != nil {
		t.Fatal(err)
	}
	if err := r.StartJoin(); !errors.Is(err, ErrCampaignBusy) {
		t.Fatalf("second StartJoin: %v", err)
	}
	c := waitCampaign(t, r)
	if c.State != "done" || c.Failed != 0 {
		t.Fatalf("campaign = %+v", c)
	}
	if c.Completed == 0 {
		t.Fatal("join campaign completed no moves")
	}
	// The live table must now assign d its fair share.
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := h.table.Snapshot()
	held := 0
	for v := 0; v < 16; v++ {
		for _, o := range snap.Owners(ring.VNodeID(v)) {
			if o == "d" {
				held++
			}
		}
	}
	if held == 0 {
		t.Fatal("joiner holds nothing after campaign")
	}
	// Protocol ordering per move: recipient armed before donor.
	if len(h.started)%2 != 0 {
		t.Fatalf("odd number of arms: %v", h.started)
	}
	for i := 0; i+1 < len(h.started); i += 2 {
		if !strings.Contains(h.started[i], ":recipient:") {
			t.Fatalf("move %d armed %q first, want recipient", i/2, h.started[i])
		}
		if !strings.Contains(h.started[i+1], ":donor:") {
			t.Fatalf("move %d armed %q second, want donor", i/2, h.started[i+1])
		}
	}
}

func TestRebalancerDrainCampaign(t *testing.T) {
	h := newFakeHost("c")
	h.table.AddNode("d") // 4 members so c can drain with RF=3
	r := NewRebalancer(RebalancerConfig{Host: h, PollEvery: time.Millisecond, Obs: obs.NewRegistry()})
	if err := r.StartDrain(); err != nil {
		t.Fatal(err)
	}
	c := waitCampaign(t, r)
	if c.State != "done" || c.Failed != 0 {
		t.Fatalf("campaign = %+v", c)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := h.table.Snapshot()
	for v := 0; v < 16; v++ {
		for _, o := range snap.Owners(ring.VNodeID(v)) {
			if o == "c" {
				t.Fatalf("vnode %d still assigned to drained node", v)
			}
		}
	}
}

func TestRebalancerDrainRejectedAtFloor(t *testing.T) {
	h := newFakeHost("c") // 3 members, RF=3: no capacity
	r := NewRebalancer(RebalancerConfig{Host: h, Obs: obs.NewRegistry()})
	if err := r.StartDrain(); err == nil {
		t.Fatal("drain below replica floor started")
	}
	c, ok := r.Status()
	if !ok || c.State != "failed" {
		t.Fatalf("campaign = %+v", c)
	}
	// A failed plan must not leave the orchestrator busy.
	h2 := newFakeHost("d")
	_ = h2
	if err := r.StartJoin(); err != nil {
		t.Fatalf("orchestrator stuck busy after failed plan: %v", err)
	}
	waitCampaign(t, r)
}

func TestRebalancerSkipsGuardedVNode(t *testing.T) {
	h := newFakeHost("d")
	// Hold the guard for every vnode: all moves must be skipped, none failed.
	for v := 0; v < 16; v++ {
		h.guards[ring.VNodeID(v)] = true
	}
	r := NewRebalancer(RebalancerConfig{Host: h, PollEvery: time.Millisecond, Obs: obs.NewRegistry()})
	if err := r.StartJoin(); err != nil {
		t.Fatal(err)
	}
	c := waitCampaign(t, r)
	if c.State != "done" {
		t.Fatalf("campaign = %+v", c)
	}
	if c.Skipped != c.Total || c.Failed != 0 || c.Completed != 0 {
		t.Fatalf("campaign = %+v, want all skipped", c)
	}
	if h.commits != 0 {
		t.Fatalf("%d commits despite held guards", h.commits)
	}
}
