package rebalance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/ring"
)

// Phase is the donor-side state of one vnode migration.
type Phase int

const (
	// PhaseStreaming: the initial bulk copy is paging rows to the
	// recipient; incoming mutations are dual-written.
	PhaseStreaming Phase = iota
	// PhaseSynced: the bulk copy finished; dual-writes keep the recipient
	// current while the orchestrator commits the cutover.
	PhaseSynced
	// PhaseAborted: the stream failed; the donor keeps its rows and the
	// migration must be retried from scratch.
	PhaseAborted
)

// String renders the phase for status reports.
func (p Phase) String() string {
	switch p {
	case PhaseStreaming:
		return "streaming"
	case PhaseSynced:
		return "synced"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Status is the externally visible state of one migration on this node.
type Status struct {
	VNode ring.VNodeID `json:"vnode"`
	Peer  ring.NodeID  `json:"peer"`
	Phase string       `json:"phase"`
	Rows  uint64       `json:"rows"`
	Bytes uint64       `json:"bytes"`
	Err   string       `json:"err,omitempty"`
}

// MigratorConfig parameterises the per-node migration engine.
type MigratorConfig struct {
	// Self is this node's identity.
	Self ring.NodeID
	// Scan iterates the local rows of one vnode. The blobs handed to fn
	// are the store's canonical row encodings; they may be aliased (the
	// store replaces, never mutates, values) but not written to.
	Scan func(v ring.VNodeID, fn func(key string, blob []byte) bool)
	// Send delivers one bounded batch of rows to the recipient, which
	// merges them idempotently. Required for donor duty.
	Send func(ctx context.Context, to ring.NodeID, v ring.VNodeID, keys []string, blobs [][]byte) error
	// Drop removes the local rows of a fully migrated vnode; it returns
	// the number of rows reclaimed.
	Drop func(v ring.VNodeID) int
	// Owned reports whether this node still owns v in the current ring;
	// the donor only drops rows once it has been cut out of the vnode.
	Owned func(v ring.VNodeID) bool
	// MarkDirty re-queues a vnode for anti-entropy when the final
	// catch-up pass could not reach the recipient; the sweep converges
	// what the hints and the stream may have missed.
	MarkDirty func(v ring.VNodeID)
	// BatchRows and BatchBytes bound one OpMigrateRows frame; zero
	// selects 256 rows / 256 KiB.
	BatchRows  int
	BatchBytes int
	// SendTimeout bounds one batch delivery; zero selects 5s.
	SendTimeout time.Duration
	// Obs receives the rebalance.* metrics; nil disables.
	Obs *obs.Registry
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// donorState tracks one outgoing migration.
type donorState struct {
	to    ring.NodeID
	phase Phase
	rows  uint64
	bytes uint64
	err   error
	done  chan struct{} // closed when the stream goroutine exits
}

// Migrator holds a node's migration state machine for both roles: outgoing
// vnodes it is streaming away (dual-writing mutations meanwhile) and
// incoming vnodes it accepts rows for before owning them. The replica write
// gate consults it on every mutation, so lookups are mutex-cheap.
type Migrator struct {
	cfg MigratorConfig

	mu  sync.Mutex
	out map[ring.VNodeID]*donorState
	in  map[ring.VNodeID]ring.NodeID

	nRowsStreamed *obs.Counter
	nRowsReceived *obs.Counter
	nBytesOut     *obs.Counter
	nDualWrites   *obs.Counter
	nAborts       *obs.Counter
	nDropped      *obs.Counter
	gActive       *obs.Gauge
}

// NewMigrator builds the per-node migration engine.
func NewMigrator(cfg MigratorConfig) *Migrator {
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 256
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 256 << 10
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 5 * time.Second
	}
	return &Migrator{
		cfg: cfg,
		out: map[ring.VNodeID]*donorState{},
		in:  map[ring.VNodeID]ring.NodeID{},

		nRowsStreamed: cfg.Obs.Counter("rebalance.rows_streamed"),
		nRowsReceived: cfg.Obs.Counter("rebalance.rows_received"),
		nBytesOut:     cfg.Obs.Counter("rebalance.bytes_streamed"),
		nDualWrites:   cfg.Obs.Counter("rebalance.dual_writes"),
		nAborts:       cfg.Obs.Counter("rebalance.aborts"),
		nDropped:      cfg.Obs.Counter("rebalance.rows_dropped"),
		gActive:       cfg.Obs.Gauge("rebalance.migrations_active"),
	}
}

func (m *Migrator) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf("rebalance: "+format, args...)
	}
}

// ErrMigrationBusy reports a vnode already migrating to a different peer.
var ErrMigrationBusy = errors.New("rebalance: vnode already migrating")

// ErrStillStreaming reports a Finish before the bulk copy completed.
var ErrStillStreaming = errors.New("rebalance: bulk copy still in flight")

// StartDonor arms the donor side of migrating vnode v to `to`: the vnode's
// local rows start streaming out in bounded batches while every mutation the
// donor accepts is dual-written to the recipient through the hint machinery.
// Re-arming the same (v, to) pair is idempotent.
func (m *Migrator) StartDonor(v ring.VNodeID, to ring.NodeID) error {
	if to == "" || to == m.cfg.Self {
		return fmt.Errorf("rebalance: bad recipient %q", to)
	}
	m.mu.Lock()
	if st := m.out[v]; st != nil {
		defer m.mu.Unlock()
		if st.to == to && st.phase != PhaseAborted {
			return nil
		}
		if st.phase == PhaseAborted {
			delete(m.out, v) // retry after abort below is fine
		} else {
			return fmt.Errorf("%w: vnode %d -> %q", ErrMigrationBusy, v, st.to)
		}
	}
	st := &donorState{to: to, phase: PhaseStreaming, done: make(chan struct{})}
	m.out[v] = st
	m.mu.Unlock()
	m.gActive.Add(1)
	go m.stream(v, st)
	return nil
}

// stream runs the donor's bulk copy: snapshot the vnode's row references,
// page them to the recipient, then park in PhaseSynced for the cutover.
func (m *Migrator) stream(v ring.VNodeID, st *donorState) {
	defer close(st.done)
	err := m.streamPass(context.Background(), v, st.to, func(rows, bytes int) {
		m.mu.Lock()
		st.rows += uint64(rows)
		st.bytes += uint64(bytes)
		aborted := st.phase == PhaseAborted
		m.mu.Unlock()
		m.nRowsStreamed.Add(uint64(rows))
		m.nBytesOut.Add(uint64(bytes))
		if aborted {
			panic(abortStream{})
		}
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	if st.phase == PhaseAborted {
		return
	}
	if err != nil {
		st.phase = PhaseAborted
		st.err = err
		m.nAborts.Inc()
		m.logf("stream of vnode %d to %s aborted: %v", v, st.to, err)
		return
	}
	st.phase = PhaseSynced
}

// abortStream unwinds a stream goroutine whose migration was aborted from
// the outside between batches.
type abortStream struct{}

// streamPass pages every current local row of v to `to`; onBatch is invoked
// after each delivered batch with the rows/bytes it carried.
func (m *Migrator) streamPass(ctx context.Context, v ring.VNodeID, to ring.NodeID, onBatch func(rows, bytes int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortStream); ok {
				err = errors.New("rebalance: migration aborted")
				return
			}
			panic(r)
		}
	}()
	// Snapshot the vnode's rows first: blobs are stable (the store replaces,
	// never mutates, values) and rows written after this point reach the
	// recipient through the dual-write hints.
	var keys []string
	var blobs [][]byte
	m.cfg.Scan(v, func(key string, blob []byte) bool {
		keys = append(keys, key)
		blobs = append(blobs, blob)
		return true
	})
	for start := 0; start < len(keys); {
		end, size := start, 0
		for end < len(keys) && end-start < m.cfg.BatchRows && size < m.cfg.BatchBytes {
			size += len(keys[end]) + len(blobs[end])
			end++
		}
		if serr := m.sendWithRetry(ctx, to, v, keys[start:end], blobs[start:end]); serr != nil {
			return serr
		}
		if onBatch != nil {
			onBatch(end-start, size)
		}
		start = end
	}
	return nil
}

// sendWithRetry delivers one batch with a short retry budget; the batch is
// idempotent on the recipient (CRDT merge), so re-sends are safe.
func (m *Migrator) sendWithRetry(ctx context.Context, to ring.NodeID, v ring.VNodeID, keys []string, blobs [][]byte) error {
	var lastErr error
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		sctx, cancel := context.WithTimeout(ctx, m.cfg.SendTimeout)
		lastErr = m.cfg.Send(sctx, to, v, keys, blobs)
		cancel()
		if lastErr == nil {
			return nil
		}
	}
	return lastErr
}

// DonorStatus reports the outgoing migration of v, if any.
func (m *Migrator) DonorStatus(v ring.VNodeID) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.out[v]
	if st == nil {
		return Status{}, false
	}
	out := Status{VNode: v, Peer: st.to, Phase: st.phase.String(), Rows: st.rows, Bytes: st.bytes}
	if st.err != nil {
		out.Err = st.err.Error()
	}
	return out, true
}

// FinishDonor concludes the donor side after the cutover committed: the
// migration state is cleared FIRST (new writes now bounce with NotOwner and
// re-route to the recipient), then one final catch-up pass re-streams
// whatever landed after the bulk copy's snapshot — closing the hole left by
// any dual-write hints the bounded queues dropped — and the local rows are
// dropped once the ring confirms this node is out of the vnode. With
// abort=true the state is torn down and the rows stay.
func (m *Migrator) FinishDonor(ctx context.Context, v ring.VNodeID, abort bool) error {
	m.mu.Lock()
	st := m.out[v]
	if st == nil {
		m.mu.Unlock()
		return nil // idempotent
	}
	if abort {
		streaming := st.phase == PhaseStreaming
		st.phase = PhaseAborted
		delete(m.out, v)
		m.mu.Unlock()
		m.gActive.Add(-1)
		m.nAborts.Inc()
		if streaming {
			<-st.done // the next batch check unwinds the goroutine
		}
		m.logf("migration of vnode %d to %s aborted", v, st.to)
		return nil
	}
	if st.phase == PhaseStreaming {
		m.mu.Unlock()
		return fmt.Errorf("%w: vnode %d", ErrStillStreaming, v)
	}
	to := st.to
	delete(m.out, v)
	m.mu.Unlock()
	m.gActive.Add(-1)
	<-st.done

	// Final catch-up: everything still local goes out once more. Merges are
	// idempotent, so re-sending the bulk rows is waste but never wrong.
	if err := m.streamPass(ctx, v, to, func(rows, bytes int) {
		m.nRowsStreamed.Add(uint64(rows))
		m.nBytesOut.Add(uint64(bytes))
	}); err != nil {
		// The recipient went dark between cutover and finish. Keep the rows
		// and mark the vnode for anti-entropy: the sweep re-merges it to the
		// current owners, so nothing is lost — just not yet reclaimed.
		m.logf("final pass of vnode %d to %s failed (%v); keeping rows for anti-entropy", v, to, err)
		if m.cfg.MarkDirty != nil {
			m.cfg.MarkDirty(v)
		}
		return nil
	}
	if m.cfg.Owned != nil && m.cfg.Owned(v) {
		// Still an owner (the move shifted a different replica slot to us,
		// or the cutover never landed): keep the rows.
		return nil
	}
	if m.cfg.Drop != nil {
		n := m.cfg.Drop(v)
		m.nDropped.Add(uint64(n))
		m.logf("migrated vnode %d to %s, dropped %d local rows", v, to, n)
	}
	return nil
}

// ExpectRecipient arms the recipient side: rows and dual-writes for vnode v
// arriving from the donor are accepted even though the ring does not list
// this node as an owner yet. Arming happens BEFORE the donor starts, so no
// early dual-write ever bounces.
func (m *Migrator) ExpectRecipient(v ring.VNodeID, from ring.NodeID) {
	m.mu.Lock()
	m.in[v] = from
	m.mu.Unlock()
}

// UnexpectRecipient disarms the recipient side after cutover (or abort).
func (m *Migrator) UnexpectRecipient(v ring.VNodeID) {
	m.mu.Lock()
	delete(m.in, v)
	m.mu.Unlock()
}

// Expecting reports whether this node accepts not-yet-owned rows for v.
func (m *Migrator) Expecting(v ring.VNodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.in[v]
	return ok
}

// Recipient returns the dual-write target for vnode v: set while this node
// is donating v and the stream has not aborted.
func (m *Migrator) Recipient(v ring.VNodeID) (ring.NodeID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.out[v]
	if st == nil || st.phase == PhaseAborted {
		return "", false
	}
	return st.to, true
}

// Party reports whether this node is either side of a migration of v; the
// replica gate accepts writes for vnodes it is party to.
func (m *Migrator) Party(v ring.VNodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.in[v]; ok {
		return true
	}
	st := m.out[v]
	return st != nil && st.phase != PhaseAborted
}

// NoteDualWrite counts one mutation forwarded to the recipient.
func (m *Migrator) NoteDualWrite() { m.nDualWrites.Inc() }

// NoteRowsReceived counts rows merged on the recipient side.
func (m *Migrator) NoteRowsReceived(n int) { m.nRowsReceived.Add(uint64(n)) }

// Outgoing snapshots every donor-side migration.
func (m *Migrator) Outgoing() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.out))
	for v, st := range m.out {
		s := Status{VNode: v, Peer: st.to, Phase: st.phase.String(), Rows: st.rows, Bytes: st.bytes}
		if st.err != nil {
			s.Err = st.err.Error()
		}
		out = append(out, s)
	}
	return out
}

// Incoming snapshots every recipient-side expectation.
func (m *Migrator) Incoming() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.in))
	for v, from := range m.in {
		out = append(out, Status{VNode: v, Peer: from, Phase: "expecting"})
	}
	return out
}

// Close aborts every in-flight migration (shutdown path).
func (m *Migrator) Close() {
	m.mu.Lock()
	var waits []chan struct{}
	for v, st := range m.out {
		if st.phase == PhaseStreaming {
			st.phase = PhaseAborted
			waits = append(waits, st.done)
		}
		delete(m.out, v)
	}
	m.in = map[ring.VNodeID]ring.NodeID{}
	m.mu.Unlock()
	for _, w := range waits {
		<-w
	}
}
