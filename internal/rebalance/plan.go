// Package rebalance implements Sedna's live cluster elasticity: a planner
// that derives donor→recipient vnode moves from the assignment table, a
// per-node Migrator that streams vnode rows between nodes while both keep
// serving traffic, and a Rebalancer that orchestrates whole join/drain
// campaigns one vnode at a time.
//
// A single vnode migration runs the handoff protocol:
//
//	arm recipient  →  stream rows (donor dual-writes)  →  cutover (ring CAS,
//	epoch bump)  →  final catch-up pass  →  drop donor rows
//
// Ordering invariants: the recipient is armed BEFORE the donor starts, so no
// dual-write ever bounces; the donor clears its migration state BEFORE the
// final pass, so post-cutover writes reject with NotOwner instead of landing
// in rows about to be dropped; rows are dropped only after the final pass
// succeeded AND the ring confirms the donor is out of the vnode.
package rebalance

import (
	"fmt"

	"sedna/internal/ring"
)

// PlanJoin computes the moves that hand the joining node its fair share of
// vnode slots, without mutating the live table: the snapshot is replayed
// onto a scratch table and AddNode's join logic picks the donors. Fill moves
// (From == "") assign previously empty slots to the joiner and need no data
// migration — the joiner recovers the vnode from the surviving replicas.
func PlanJoin(snap *ring.Ring, joiner ring.NodeID) ([]ring.Move, error) {
	if joiner == "" {
		return nil, fmt.Errorf("rebalance: empty joiner name")
	}
	t := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
	if err := t.ApplySnapshot(snap); err != nil {
		return nil, fmt.Errorf("rebalance: plan join: %w", err)
	}
	return collapseChains(t.AddNode(joiner)), nil
}

// PlanDrain computes the moves that empty the draining node, again on a
// scratch table. An error is returned when the remaining members cannot
// absorb every slot (a move with To == "") — draining below the replica
// floor would silently shed redundancy.
func PlanDrain(snap *ring.Ring, node ring.NodeID) ([]ring.Move, error) {
	t := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
	if err := t.ApplySnapshot(snap); err != nil {
		return nil, fmt.Errorf("rebalance: plan drain: %w", err)
	}
	moves := collapseChains(t.RemoveNode(node))
	for _, m := range moves {
		if m.To == "" {
			return nil, fmt.Errorf("rebalance: cannot drain %q: no node can absorb vnode %d slot %d", node, m.VNode, m.Slot)
		}
	}
	return moves, nil
}

// collapseChains merges per-(vnode,slot) move chains the table planner can
// emit — a vacate ""←x followed by a fill ""→y on the same slot becomes the
// single migration x→y; a fill followed by a pull collapses likewise. The
// result has at most one move per (vnode, slot).
func collapseChains(moves []ring.Move) []ring.Move {
	type slotKey struct {
		v    ring.VNodeID
		slot int
	}
	first := map[slotKey]int{}
	out := make([]ring.Move, 0, len(moves))
	for _, m := range moves {
		k := slotKey{m.VNode, m.Slot}
		if i, ok := first[k]; ok {
			// Chain: keep the original source, adopt the final target.
			out[i].To = m.To
			continue
		}
		first[k] = len(out)
		out = append(out, m)
	}
	// Drop no-ops a chain may have collapsed into (x → x).
	kept := out[:0]
	for _, m := range out {
		if m.From == m.To {
			continue
		}
		kept = append(kept, m)
	}
	return kept
}
