package rebalance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/ring"
)

// Host is the node-side surface the Rebalancer drives migrations through.
// Implementations route to the local Migrator when node == self and over the
// data-plane RPC otherwise, keeping this package free of transport imports.
type Host interface {
	// Self is this node's identity.
	Self() ring.NodeID
	// FreshRing fetches the authoritative ring snapshot from the
	// coordination service (not a cached lease).
	FreshRing() (*ring.Ring, error)
	// MigrateStart arms one side of a migration on `node`: as recipient
	// (accept rows for v from peer) or as donor (stream v to peer).
	MigrateStart(ctx context.Context, node ring.NodeID, v ring.VNodeID, peer ring.NodeID, recipientRole bool) error
	// MigrateStatus reports the donor-side progress on `node`.
	MigrateStatus(ctx context.Context, node ring.NodeID, v ring.VNodeID) (Status, error)
	// MigrateFinish concludes (or aborts) one side of a migration.
	MigrateFinish(ctx context.Context, node ring.NodeID, v ring.VNodeID, abort, recipientRole bool) error
	// Commit CASes the slot's owner from `from` to `to` in the coordination
	// service, bumping the vnode's epoch; ring.ErrStaleMove reports a lost
	// race with a concurrent reassignment.
	Commit(v ring.VNodeID, slot int, from, to ring.NodeID) error
	// Guard acquires the cluster-wide per-vnode migration guard; a held
	// guard (another campaign is moving v) surfaces as ErrGuardHeld-wrapped
	// error from the cluster layer.
	Guard(v ring.VNodeID) (release func(), err error)
	// GuardHeld reports whether err means the guard is held elsewhere.
	GuardHeld(err error) bool
	// Recover pulls vnode v's rows from the surviving replicas (the
	// fill-move path, where no donor exists to stream from).
	Recover(v ring.VNodeID)
}

// Campaign is the JSON status of one join/drain run.
type Campaign struct {
	Kind      string      `json:"kind"` // "join" | "drain"
	Target    ring.NodeID `json:"target"`
	State     string      `json:"state"` // "running" | "done" | "failed"
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Skipped   int         `json:"skipped"`
	Failed    int         `json:"failed"`
	Current   string      `json:"current,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// Campaign states.
const (
	CampaignRunning = "running"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
)

// ErrCampaignBusy reports a join/drain start while one is already running.
var ErrCampaignBusy = errors.New("rebalance: campaign already running")

// RebalancerConfig parameterises the campaign orchestrator.
type RebalancerConfig struct {
	Host Host
	// SyncTimeout bounds the wait for one vnode's bulk copy; zero = 30s.
	SyncTimeout time.Duration
	// PollEvery paces donor status polls; zero = 20ms.
	PollEvery time.Duration
	// Obs receives rebalance campaign metrics; nil disables.
	Obs *obs.Registry
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Rebalancer runs join/drain campaigns: plan moves against a fresh ring,
// then migrate one vnode at a time — serial execution keeps the transfer
// bandwidth (and therefore the p99 impact on foreground traffic) bounded.
type Rebalancer struct {
	cfg RebalancerConfig

	mu       sync.Mutex
	campaign *Campaign
	running  bool

	nCutovers  *obs.Counter
	nMoveFails *obs.Counter
	nCampaigns *obs.Counter
}

// NewRebalancer builds the orchestrator.
func NewRebalancer(cfg RebalancerConfig) *Rebalancer {
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 30 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 20 * time.Millisecond
	}
	return &Rebalancer{
		cfg:        cfg,
		nCutovers:  cfg.Obs.Counter("rebalance.cutovers"),
		nMoveFails: cfg.Obs.Counter("rebalance.move_failures"),
		nCampaigns: cfg.Obs.Counter("rebalance.campaigns"),
	}
}

func (r *Rebalancer) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("rebalance: "+format, args...)
	}
}

// Status returns the current or last campaign, if any.
func (r *Rebalancer) Status() (Campaign, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.campaign == nil {
		return Campaign{}, false
	}
	return *r.campaign, true
}

// StartJoin launches a campaign that pulls this node's fair share of vnode
// slots from the existing members. It returns once the campaign is planned
// and running; poll Status for progress.
func (r *Rebalancer) StartJoin() error {
	return r.start("join", func(snap *ring.Ring) ([]ring.Move, error) {
		return PlanJoin(snap, r.cfg.Host.Self())
	})
}

// StartDrain launches a campaign that migrates every slot this node holds to
// the other members, leaving it safe to remove.
func (r *Rebalancer) StartDrain() error {
	return r.start("drain", func(snap *ring.Ring) ([]ring.Move, error) {
		return PlanDrain(snap, r.cfg.Host.Self())
	})
}

func (r *Rebalancer) start(kind string, plan func(*ring.Ring) ([]ring.Move, error)) error {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return ErrCampaignBusy
	}
	r.running = true
	r.campaign = &Campaign{Kind: kind, Target: r.cfg.Host.Self(), State: CampaignRunning}
	r.mu.Unlock()
	r.nCampaigns.Inc()

	snap, err := r.cfg.Host.FreshRing()
	if err == nil {
		var moves []ring.Move
		moves, err = plan(snap)
		if err == nil {
			r.mu.Lock()
			r.campaign.Total = len(moves)
			r.mu.Unlock()
			go r.run(moves)
			return nil
		}
	}
	r.mu.Lock()
	r.campaign.State = CampaignFailed
	r.campaign.Error = err.Error()
	r.running = false
	r.mu.Unlock()
	return err
}

// run executes the campaign's moves serially and records the outcome.
func (r *Rebalancer) run(moves []ring.Move) {
	completed, skipped, failed := 0, 0, 0
	for _, m := range moves {
		r.mu.Lock()
		r.campaign.Current = fmt.Sprintf("vnode %d: %s -> %s", m.VNode, orBlank(m.From), m.To)
		r.mu.Unlock()
		switch err := r.migrateOne(m); {
		case err == nil:
			completed++
		case errors.Is(err, errMoveSkipped):
			skipped++
			r.logf("move %v skipped: %v", m, err)
		default:
			failed++
			r.nMoveFails.Inc()
			r.logf("move %v failed: %v", m, err)
		}
		r.mu.Lock()
		r.campaign.Completed = completed
		r.campaign.Skipped = skipped
		r.campaign.Failed = failed
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.campaign.Current = ""
	if failed > 0 {
		r.campaign.State = CampaignFailed
		r.campaign.Error = fmt.Sprintf("%d of %d moves failed", failed, len(moves))
	} else {
		r.campaign.State = CampaignDone
	}
	kind := r.campaign.Kind
	r.running = false
	r.mu.Unlock()
	r.logf("campaign %s done: %d completed, %d skipped, %d failed of %d",
		kind, completed, skipped, failed, len(moves))
}

// errMoveSkipped classifies a move that lost a benign race (guard held by a
// concurrent campaign, assignment changed under us) — not a failure.
var errMoveSkipped = errors.New("rebalance: move skipped")

// migrateOne runs the full handoff protocol for one move. Fill moves
// (From == "") commit directly and recover from replicas; real moves arm the
// recipient first, stream, cut over via ring CAS, then finish both sides.
func (r *Rebalancer) migrateOne(m ring.Move) error {
	host := r.cfg.Host
	release, err := host.Guard(m.VNode)
	if err != nil {
		if host.GuardHeld(err) {
			return fmt.Errorf("%w: %v", errMoveSkipped, err)
		}
		return err
	}
	defer release()

	if m.From == "" {
		// Previously empty slot: no donor to stream from. Commit the
		// assignment, then pull the rows from the surviving replicas.
		if err := host.Commit(m.VNode, m.Slot, m.From, m.To); err != nil {
			if errors.Is(err, ring.ErrStaleMove) {
				return fmt.Errorf("%w: %v", errMoveSkipped, err)
			}
			return err
		}
		r.nCutovers.Inc()
		if m.To == host.Self() {
			host.Recover(m.VNode)
		}
		return nil
	}

	ctx := context.Background()
	// Recipient first: every dual-write the donor emits from the first
	// streamed row onward must find the recipient already accepting.
	if err := host.MigrateStart(ctx, m.To, m.VNode, m.From, true); err != nil {
		return fmt.Errorf("arm recipient: %w", err)
	}
	if err := host.MigrateStart(ctx, m.From, m.VNode, m.To, false); err != nil {
		_ = host.MigrateFinish(ctx, m.To, m.VNode, true, true)
		return fmt.Errorf("arm donor: %w", err)
	}

	// Wait for the bulk copy to finish.
	if err := r.awaitSynced(ctx, m); err != nil {
		r.abortBoth(ctx, m)
		return err
	}

	// Cutover: CAS the assignment. After this commits, readers quorum
	// through the recipient and the donor's gate bounces new writes.
	if err := host.Commit(m.VNode, m.Slot, m.From, m.To); err != nil {
		r.abortBoth(ctx, m)
		if errors.Is(err, ring.ErrStaleMove) {
			return fmt.Errorf("%w: %v", errMoveSkipped, err)
		}
		return fmt.Errorf("cutover: %w", err)
	}
	r.nCutovers.Inc()

	// Finish: donor runs the final catch-up pass and drops its rows, then
	// the recipient stops special-casing the vnode. Finish failures after a
	// committed cutover are not fatal — anti-entropy converges the tail.
	if err := host.MigrateFinish(ctx, m.From, m.VNode, false, false); err != nil {
		r.logf("donor finish of vnode %d on %s failed (anti-entropy will converge): %v", m.VNode, m.From, err)
	}
	if err := host.MigrateFinish(ctx, m.To, m.VNode, false, true); err != nil {
		r.logf("recipient finish of vnode %d on %s failed: %v", m.VNode, m.To, err)
	}
	return nil
}

// awaitSynced polls the donor until the bulk copy parks in PhaseSynced.
func (r *Rebalancer) awaitSynced(ctx context.Context, m ring.Move) error {
	deadline := time.Now().Add(r.cfg.SyncTimeout)
	for {
		st, err := r.cfg.Host.MigrateStatus(ctx, m.From, m.VNode)
		if err != nil {
			return fmt.Errorf("donor status: %w", err)
		}
		switch st.Phase {
		case PhaseSynced.String():
			return nil
		case PhaseAborted.String():
			return fmt.Errorf("donor stream aborted: %s", st.Err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("vnode %d bulk copy did not sync within %v", m.VNode, r.cfg.SyncTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.cfg.PollEvery):
		}
	}
}

func (r *Rebalancer) abortBoth(ctx context.Context, m ring.Move) {
	_ = r.cfg.Host.MigrateFinish(ctx, m.From, m.VNode, true, false)
	_ = r.cfg.Host.MigrateFinish(ctx, m.To, m.VNode, true, true)
}

func orBlank(n ring.NodeID) string {
	if n == "" {
		return "(empty)"
	}
	return string(n)
}
