package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Ring snapshot wire format (little endian). The snapshot is the value of
// the assignment znode in the coordination service and the payload of client
// lease refreshes, so it is kept compact: node names appear once in a string
// table and each vnode slot is a 32-bit index into it.
//
//	u8  format version
//	u64 assignment version
//	u32 vnode count
//	u8  replica factor
//	u32 node table size; per node: u16 length + bytes
//	per vnode, per slot: u32 index into node table (emptySlot = none)
//	version >= 2: per vnode: u64 ownership epoch
//
// Version 2 added the per-vnode ownership epochs used by online migration;
// version 1 snapshots (written before elasticity existed) still decode, with
// every epoch read as zero.
const (
	ringFormatV1      = 1
	ringFormatVersion = 2
)

const emptySlot = ^uint32(0)

// ErrCorruptRing reports a snapshot blob that fails to decode.
var ErrCorruptRing = errors.New("ring: corrupt snapshot encoding")

// EncodeRing serialises a ring snapshot.
func EncodeRing(r *Ring) []byte {
	nodes := r.Nodes()
	index := make(map[NodeID]uint32, len(nodes))
	for i, n := range nodes {
		index[n] = uint32(i)
	}
	size := 1 + 8 + 4 + 1 + 4
	for _, n := range nodes {
		size += 2 + len(n)
	}
	size += r.vnodes * r.replicas * 4
	size += r.vnodes * 8
	b := make([]byte, 0, size)
	b = append(b, ringFormatVersion)
	b = binary.LittleEndian.AppendUint64(b, r.version)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.vnodes))
	b = append(b, byte(r.replicas))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(nodes)))
	for _, n := range nodes {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(n)))
		b = append(b, n...)
	}
	for v := 0; v < r.vnodes; v++ {
		owners := r.assign[v]
		for slot := 0; slot < r.replicas; slot++ {
			idx := emptySlot
			if slot < len(owners) && owners[slot] != "" {
				idx = index[owners[slot]]
			}
			b = binary.LittleEndian.AppendUint32(b, idx)
		}
	}
	for v := 0; v < r.vnodes; v++ {
		b = binary.LittleEndian.AppendUint64(b, r.EpochOf(VNodeID(v)))
	}
	return b
}

// DecodeRing parses a snapshot produced by EncodeRing. Both the current
// format and the pre-epoch version 1 are accepted.
func DecodeRing(b []byte) (*Ring, error) {
	off := 0
	need := func(n int) error {
		if len(b)-off < n {
			return fmt.Errorf("%w: truncated at %d", ErrCorruptRing, off)
		}
		return nil
	}
	if err := need(1 + 8 + 4 + 1 + 4); err != nil {
		return nil, err
	}
	format := b[off]
	if format != ringFormatV1 && format != ringFormatVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorruptRing, format)
	}
	off++
	version := binary.LittleEndian.Uint64(b[off:])
	off += 8
	vnodes := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	replicas := int(b[off])
	off++
	nNodes := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if vnodes <= 0 || vnodes > 1<<24 || replicas <= 0 || replicas > 255 || nNodes > 1<<20 {
		return nil, fmt.Errorf("%w: implausible header (vnodes=%d replicas=%d nodes=%d)", ErrCorruptRing, vnodes, replicas, nNodes)
	}
	nodes := make([]NodeID, nNodes)
	for i := range nodes {
		if err := need(2); err != nil {
			return nil, err
		}
		l := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if err := need(l); err != nil {
			return nil, err
		}
		nodes[i] = NodeID(b[off : off+l])
		off += l
	}
	r := &Ring{vnodes: vnodes, replicas: replicas, version: version, assign: make([][]NodeID, vnodes)}
	if err := need(vnodes * replicas * 4); err != nil {
		return nil, err
	}
	for v := 0; v < vnodes; v++ {
		owners := make([]NodeID, replicas)
		for slot := 0; slot < replicas; slot++ {
			idx := binary.LittleEndian.Uint32(b[off:])
			off += 4
			if idx != emptySlot {
				if int(idx) >= len(nodes) {
					return nil, fmt.Errorf("%w: node index %d out of range", ErrCorruptRing, idx)
				}
				owners[slot] = nodes[idx]
			}
		}
		r.assign[v] = owners
	}
	if format >= ringFormatVersion {
		if err := need(vnodes * 8); err != nil {
			return nil, err
		}
		r.epochs = make([]uint64, vnodes)
		for v := 0; v < vnodes; v++ {
			r.epochs[v] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRing, len(b)-off)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
