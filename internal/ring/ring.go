// Package ring implements Sedna's partitioning layer (§III-B): a consistent
// hash ring equally divided into a fixed number of virtual nodes, an explicit
// virtual-node → real-node assignment table (the state Sedna keeps in its
// coordination service), per-vnode load statistics and the per-real-node
// imbalance table that drives data balancing.
//
// The vnode count is fixed when the cluster is created and cannot change
// without a restart, exactly as the paper specifies; the paper's guidance of
// roughly 100 virtual nodes per real server is exposed as
// DefaultVnodesPerNode.
package ring

import (
	"errors"
	"fmt"

	"sedna/internal/kv"
)

// DefaultVnodesPerNode is the paper's rule of thumb: about 100 virtual nodes
// stored per real node (§III-D), so a 1,000-server cluster uses ~100,000
// virtual nodes.
const DefaultVnodesPerNode = 100

// DefaultReplicas is the paper's replication degree: every datum is stored
// on one server and replicated on two others (§III-B, Fig. 3).
const DefaultReplicas = 3

// VNodeID identifies one virtual node, a contiguous sub-range of the hash
// space. Valid ids are 0 <= id < NumVNodes.
type VNodeID uint32

// NodeID identifies a real server. The empty string is "unassigned".
type NodeID string

// Hash64 is the key hash used across Sedna. It is FNV-1a with an avalanche
// finalizer so that the low bits used by the modulo are well mixed even for
// the paper's sequential "test-00000000000001"-style keys.
func Hash64(key kv.Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashPair mixes a node name with a vnode id, used for deterministic replica
// placement preferences.
func hashPair(node NodeID, v VNodeID) uint64 {
	h := Hash64(kv.Key(node))
	x := h ^ (uint64(v)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return x
}

// Ring is an immutable snapshot of the partition map: the fixed vnode count
// plus the replica assignment of every vnode. Servers and clients route with
// a Ring snapshot leased from the coordination service, which is what makes
// Sedna a zero-hop DHT (§VII).
type Ring struct {
	vnodes   int
	replicas int
	version  uint64
	// assign is indexed by VNodeID; each entry lists the replica holders,
	// primary first.
	assign [][]NodeID
	// epochs is indexed by VNodeID and counts ownership changes of that
	// vnode: every time any replica slot of the vnode is reassigned the
	// epoch is bumped. Anti-entropy sweeps and migration cutovers compare
	// epochs to detect that ownership moved under them. A nil slice (rings
	// decoded from the v1 wire format) reads as all zeros.
	epochs []uint64
}

// NumVNodes returns the fixed virtual node count.
func (r *Ring) NumVNodes() int { return r.vnodes }

// ReplicaFactor returns the target number of replicas per vnode.
func (r *Ring) ReplicaFactor() int { return r.replicas }

// Version returns the monotonically increasing version of the assignment;
// clients use it to detect stale leases.
func (r *Ring) Version() uint64 { return r.version }

// EpochOf returns the ownership epoch of a vnode: how many times any of its
// replica slots has been reassigned since the cluster was created. Rings
// decoded from pre-epoch snapshots report zero for every vnode.
func (r *Ring) EpochOf(v VNodeID) uint64 {
	if int(v) >= len(r.epochs) {
		return 0
	}
	return r.epochs[v]
}

// bumpEpoch increments the ownership epoch of vnode v, allocating the epoch
// vector lazily for rings decoded from the v1 wire format.
func (r *Ring) bumpEpoch(v VNodeID) {
	if r.epochs == nil {
		r.epochs = make([]uint64, r.vnodes)
	}
	if int(v) < len(r.epochs) {
		r.epochs[v]++
	}
}

// VNodeFor maps a key onto its virtual node: hash the key to an integer,
// then mod into the vnode range (§III-B).
func (r *Ring) VNodeFor(key kv.Key) VNodeID {
	return VNodeID(Hash64(key) % uint64(r.vnodes))
}

// Owners returns the replica holders of a vnode, primary first. The returned
// slice must not be modified.
func (r *Ring) Owners(v VNodeID) []NodeID {
	if int(v) >= len(r.assign) {
		return nil
	}
	return r.assign[v]
}

// OwnersForKey returns the replica holders responsible for a key.
func (r *Ring) OwnersForKey(key kv.Key) []NodeID {
	return r.Owners(r.VNodeFor(key))
}

// Primary returns the primary holder of the key's vnode, or "" when the
// vnode is unassigned.
func (r *Ring) Primary(key kv.Key) NodeID {
	owners := r.OwnersForKey(key)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// VNodesOf returns the vnodes for which node holds any replica, in id order.
func (r *Ring) VNodesOf(node NodeID) []VNodeID {
	var out []VNodeID
	for v, owners := range r.assign {
		for _, o := range owners {
			if o == node {
				out = append(out, VNodeID(v))
				break
			}
		}
	}
	return out
}

// PrimaryVNodesOf returns the vnodes for which node is the primary holder.
func (r *Ring) PrimaryVNodesOf(node NodeID) []VNodeID {
	var out []VNodeID
	for v, owners := range r.assign {
		if len(owners) > 0 && owners[0] == node {
			out = append(out, VNodeID(v))
		}
	}
	return out
}

// Nodes returns the distinct real nodes appearing anywhere in the
// assignment, in first-appearance order.
func (r *Ring) Nodes() []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, owners := range r.assign {
		for _, o := range owners {
			if o != "" && !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

// Clone returns a deep copy; Tables hand out Rings that share no storage.
func (r *Ring) Clone() *Ring {
	c := &Ring{vnodes: r.vnodes, replicas: r.replicas, version: r.version}
	c.assign = make([][]NodeID, len(r.assign))
	for i, owners := range r.assign {
		c.assign[i] = append([]NodeID(nil), owners...)
	}
	if r.epochs != nil {
		c.epochs = append([]uint64(nil), r.epochs...)
	}
	return c
}

// Validate checks the structural invariants of the snapshot: every vnode has
// at most ReplicaFactor owners and owners are pairwise distinct.
func (r *Ring) Validate() error {
	if r.vnodes <= 0 {
		return errors.New("ring: vnode count must be positive")
	}
	if len(r.assign) != r.vnodes {
		return fmt.Errorf("ring: assignment covers %d of %d vnodes", len(r.assign), r.vnodes)
	}
	if r.epochs != nil && len(r.epochs) != r.vnodes {
		return fmt.Errorf("ring: epoch vector covers %d of %d vnodes", len(r.epochs), r.vnodes)
	}
	for v, owners := range r.assign {
		if len(owners) > r.replicas {
			return fmt.Errorf("ring: vnode %d has %d owners, max %d", v, len(owners), r.replicas)
		}
		for i := 0; i < len(owners); i++ {
			if owners[i] == "" {
				continue // unassigned slot
			}
			for j := i + 1; j < len(owners); j++ {
				if owners[i] == owners[j] {
					return fmt.Errorf("ring: vnode %d repeats owner %q", v, owners[i])
				}
			}
		}
	}
	return nil
}
