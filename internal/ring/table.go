package ring

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrStaleMove reports a MoveSlot whose expected occupant no longer matches
// the live assignment: the plan the move came from is stale and must be
// recomputed.
var ErrStaleMove = errors.New("ring: stale move")

// Move records one reassignment of a vnode replica slot, the unit of data
// motion in Sedna: the receiving node must copy the vnode's rows from the
// remaining healthy owners before the move is complete.
type Move struct {
	VNode VNodeID
	Slot  int
	From  NodeID // "" when filling a previously empty slot
	To    NodeID // "" when vacating a slot with no replacement available
}

// String renders the move for logs.
func (m Move) String() string {
	return fmt.Sprintf("vnode %d slot %d: %q -> %q", m.VNode, m.Slot, m.From, m.To)
}

// Table is the mutable virtual-node assignment, the authoritative state
// Sedna keeps in its coordination service. Nodes join by claiming vnodes
// ("ask for virtual nodes", §III-D) and leave — or fail — by having their
// vnodes redistributed. All methods are safe for concurrent use.
//
// The balancing rule per replica slot is: every member owns either
// floor(V/N) or ceil(V/N) vnodes, and the owners of one vnode are pairwise
// distinct. Rebalancing moves vnodes only from overloaded members to
// underloaded ones, so a join disturbs no more than the joiner's fair share.
type Table struct {
	mu    sync.Mutex
	ring  *Ring
	nodes map[NodeID]bool
}

// NewTable creates an assignment table for a fixed vnode count and replica
// factor. All slots start unassigned; the first AddNode claims everything.
func NewTable(vnodes, replicas int) *Table {
	if vnodes <= 0 {
		panic("ring: vnode count must be positive")
	}
	if replicas <= 0 {
		panic("ring: replica factor must be positive")
	}
	r := &Ring{vnodes: vnodes, replicas: replicas, assign: make([][]NodeID, vnodes), epochs: make([]uint64, vnodes)}
	for v := range r.assign {
		r.assign[v] = make([]NodeID, replicas)
	}
	return &Table{ring: r, nodes: map[NodeID]bool{}}
}

// Snapshot returns an immutable copy of the current assignment.
func (t *Table) Snapshot() *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ring.Clone()
}

// Nodes returns the current member set in sorted order.
func (t *Table) Nodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNode registers a new real node. The joiner "asks for virtual nodes"
// (§III-D): for every already-active replica slot it pulls vnodes from the
// most loaded owners until it reaches its fair share, so a join moves data
// only toward the joiner; a slot that becomes active because the membership
// grew past its index is filled across all members. It returns the applied
// moves; adding an existing member returns none.
func (t *Table) AddNode(n NodeID) []Move {
	if n == "" {
		panic("ring: empty node id")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes[n] {
		return nil
	}
	t.nodes[n] = true
	active := t.ring.replicas
	if len(t.nodes) < active {
		active = len(t.nodes)
	}
	var moves []Move
	for slot := 0; slot < active; slot++ {
		// Filling first covers both newly activated slots (every entry
		// empty, distributed over the whole membership because the fill
		// always picks the least loaded member) and holes left by earlier
		// departures that had no eligible survivor.
		moves = append(moves, t.fillSlotLocked(slot)...)
		moves = append(moves, t.pullToJoinerLocked(slot, n)...)
	}
	if len(moves) > 0 {
		t.ring.version++
	}
	return moves
}

// pullToJoinerLocked transfers vnodes of one slot from the most loaded
// owners to the joiner until the joiner holds its fair share. Only the
// joiner receives vnodes, so established members are never churned.
func (t *Table) pullToJoinerLocked(slot int, n NodeID) []Move {
	counts := t.slotCountsLocked(slot)
	fair := t.ring.vnodes / len(t.nodes)
	// Joiner's deterministic preference order over vnodes.
	order := make([]VNodeID, t.ring.vnodes)
	for i := range order {
		order[i] = VNodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return hashPair(n, order[i]) > hashPair(n, order[j])
	})
	var moves []Move
	banned := map[NodeID]bool{}
	for counts[n] < fair {
		donor := t.mostLoadedLocked(counts, n, banned)
		if donor == "" {
			break
		}
		moved := false
		for _, v := range order {
			if t.ring.assign[v][slot] != donor || t.holdsLocked(v, n) {
				continue
			}
			t.ring.assign[v][slot] = n
			t.ring.bumpEpoch(v)
			counts[donor]--
			counts[n]++
			moves = append(moves, Move{VNode: v, Slot: slot, From: donor, To: n})
			moved = true
			break
		}
		if !moved {
			banned[donor] = true // every vnode of this donor already includes n
		}
	}
	return moves
}

func (t *Table) mostLoadedLocked(counts map[NodeID]int, exclude NodeID, banned map[NodeID]bool) NodeID {
	var best NodeID
	bestCount := 0
	for node := range t.nodes {
		if node == exclude || banned[node] {
			continue
		}
		c := counts[node]
		if c > bestCount || (c == bestCount && best != "" && node < best) {
			best, bestCount = node, c
		}
	}
	return best
}

// RemoveNode removes a node (graceful leave or failure): every slot it held
// is reassigned to the least loaded eligible survivor and any residual
// imbalance is fixed by re-shuffling only within the vacated vnodes, so
// surviving placements are never churned. Removing a non-member returns no
// moves.
func (t *Table) RemoveNode(n NodeID) []Move {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.nodes[n] {
		return nil
	}
	delete(t.nodes, n)
	vacated := make([][]VNodeID, t.ring.replicas)
	for v := 0; v < t.ring.vnodes; v++ {
		owners := t.ring.assign[v]
		for slot, o := range owners {
			if o == n {
				owners[slot] = ""
				t.ring.bumpEpoch(VNodeID(v))
				vacated[slot] = append(vacated[slot], VNodeID(v))
			}
		}
	}
	var moves []Move
	for slot := 0; slot < t.ring.replicas; slot++ {
		if len(vacated[slot]) == 0 {
			continue
		}
		if len(t.nodes) == 0 {
			for _, v := range vacated[slot] {
				moves = append(moves, Move{VNode: v, Slot: slot, From: n, To: ""})
			}
			continue
		}
		counts := t.slotCountsLocked(slot)
		// Fill each vacancy with the least loaded eligible survivor.
		for _, v := range vacated[slot] {
			to := t.leastLoadedEligibleLocked(counts, v)
			t.ring.assign[v][slot] = to
			if to != "" {
				t.ring.bumpEpoch(v)
				counts[to]++
			}
			moves = append(moves, Move{VNode: v, Slot: slot, From: n, To: to})
		}
		// Fix up residual imbalance, but only by re-homing vacated vnodes.
		moves = append(moves, t.fixupWithinLocked(slot, vacated[slot], counts)...)
	}
	// A vacancy with no eligible survivor (every remaining member already
	// holds the vnode) leaves a hole; compact the replica list so slot 0
	// is always the primary and active slots stay dense.
	for v := 0; v < t.ring.vnodes; v++ {
		if compactOwners(t.ring.assign[v]) {
			t.ring.bumpEpoch(VNodeID(v))
		}
	}
	t.ring.version++
	return moves
}

// compactOwners shifts non-empty owners to the front, preserving order, and
// reports whether anything moved.
func compactOwners(owners []NodeID) bool {
	w := 0
	changed := false
	for _, o := range owners {
		if o != "" {
			if owners[w] != o {
				changed = true
			}
			owners[w] = o
			w++
		}
	}
	for ; w < len(owners); w++ {
		if owners[w] != "" {
			changed = true
		}
		owners[w] = ""
	}
	return changed
}

// fixupWithinLocked evens out slot counts by reassigning only vnodes in the
// given set. It stops when the spread is at most one or no legal move
// remains.
func (t *Table) fixupWithinLocked(slot int, within []VNodeID, counts map[NodeID]int) []Move {
	var moves []Move
	for iter := 0; iter < len(within)*2; iter++ {
		moved := false
		for _, v := range within {
			from := t.ring.assign[v][slot]
			if from == "" {
				continue
			}
			to := t.leastLoadedEligibleLocked(counts, v)
			if to == "" || to == from || counts[from] < counts[to]+2 {
				continue
			}
			t.ring.assign[v][slot] = to
			t.ring.bumpEpoch(v)
			counts[from]--
			counts[to]++
			moves = append(moves, Move{VNode: v, Slot: slot, From: from, To: to})
			moved = true
		}
		if !moved {
			break
		}
	}
	return moves
}

// Rebalance re-runs the balancing pass without a membership change; it is
// used by the data balancer when the imbalance table reports drift (for
// example after ApplySnapshot of a hand-edited assignment).
func (t *Table) Rebalance() []Move {
	t.mu.Lock()
	defer t.mu.Unlock()
	moves := t.rebalanceLocked()
	if len(moves) > 0 {
		t.ring.version++
	}
	return moves
}

// rebalanceLocked fills empty slots and evens out per-slot ownership.
func (t *Table) rebalanceLocked() []Move {
	var moves []Move
	active := t.ring.replicas
	if len(t.nodes) < active {
		active = len(t.nodes)
	}
	for slot := 0; slot < active; slot++ {
		moves = append(moves, t.fillSlotLocked(slot)...)
		moves = append(moves, t.evenSlotLocked(slot)...)
	}
	return moves
}

// fillSlotLocked assigns every empty entry of the slot to the least loaded
// node not already holding the vnode.
func (t *Table) fillSlotLocked(slot int) []Move {
	counts := t.slotCountsLocked(slot)
	var moves []Move
	for v := 0; v < t.ring.vnodes; v++ {
		owners := t.ring.assign[v]
		if owners[slot] != "" {
			continue
		}
		n := t.leastLoadedEligibleLocked(counts, VNodeID(v))
		if n == "" {
			continue // fewer distinct nodes than replicas; leave empty
		}
		owners[slot] = n
		t.ring.bumpEpoch(VNodeID(v))
		counts[n]++
		moves = append(moves, Move{VNode: VNodeID(v), Slot: slot, From: "", To: n})
	}
	return moves
}

// evenSlotLocked moves vnodes from overloaded owners to underloaded ones
// until every member owns floor or ceil of the fair share, or no legal move
// remains (distinctness can block a final handful of moves). It runs in two
// phases so that a join moves vnodes only toward the joiner and never churns
// already-balanced members: first underloaded nodes (below the floor) pull
// from any owner above the floor, then owners above the ceiling shed.
func (t *Table) evenSlotLocked(slot int) []Move {
	counts := t.slotCountsLocked(slot)
	if len(counts) == 0 {
		return nil
	}
	floor := t.ring.vnodes / len(t.nodes)
	ceil := floor
	if t.ring.vnodes%len(t.nodes) != 0 {
		ceil++
	}
	var moves []Move
	move := func(v int, from, to NodeID) {
		t.ring.assign[v][slot] = to
		t.ring.bumpEpoch(VNodeID(v))
		counts[from]--
		counts[to]++
		moves = append(moves, Move{VNode: VNodeID(v), Slot: slot, From: from, To: to})
	}

	// Phase 1: pull toward nodes below the floor.
	for pass := 0; pass < t.ring.vnodes; pass++ {
		changed := false
		for v := 0; v < t.ring.vnodes; v++ {
			from := t.ring.assign[v][slot]
			if from == "" || counts[from] <= floor {
				continue
			}
			to := t.leastLoadedEligibleLocked(counts, VNodeID(v))
			if to == "" || to == from || counts[to] >= floor {
				continue
			}
			move(v, from, to)
			changed = true
		}
		if !changed {
			break
		}
	}

	// Phase 2: shed from nodes above the ceiling.
	for pass := 0; pass < t.ring.vnodes; pass++ {
		changed := false
		for v := 0; v < t.ring.vnodes; v++ {
			from := t.ring.assign[v][slot]
			if from == "" || counts[from] <= ceil {
				continue
			}
			to := t.leastLoadedEligibleLocked(counts, VNodeID(v))
			if to == "" || to == from || counts[from] < counts[to]+2 {
				continue
			}
			move(v, from, to)
			changed = true
		}
		if !changed {
			break
		}
	}
	return moves
}

func (t *Table) holdsLocked(v VNodeID, n NodeID) bool {
	for _, o := range t.ring.assign[v] {
		if o == n {
			return true
		}
	}
	return false
}

func (t *Table) slotCountsLocked(slot int) map[NodeID]int {
	counts := make(map[NodeID]int, len(t.nodes))
	for n := range t.nodes {
		counts[n] = 0
	}
	for v := 0; v < t.ring.vnodes; v++ {
		if o := t.ring.assign[v][slot]; o != "" {
			counts[o]++
		}
	}
	return counts
}

// leastLoadedEligibleLocked picks the member with the lowest count that does
// not already hold vnode v, breaking ties by name for determinism.
func (t *Table) leastLoadedEligibleLocked(counts map[NodeID]int, v VNodeID) NodeID {
	var best NodeID
	bestCount := int(^uint(0) >> 1)
	for node := range t.nodes {
		if t.holdsLocked(v, node) {
			continue
		}
		c := counts[node]
		if c < bestCount || (c == bestCount && node < best) {
			best, bestCount = node, c
		}
	}
	return best
}

// ApplySnapshot replaces the table's state with a decoded snapshot, used
// when a node (re)loads the assignment from the coordination service.
func (t *Table) ApplySnapshot(r *Ring) error {
	if err := r.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = r.Clone()
	for v := range t.ring.assign {
		for len(t.ring.assign[v]) < t.ring.replicas {
			t.ring.assign[v] = append(t.ring.assign[v], "")
		}
	}
	t.nodes = map[NodeID]bool{}
	for _, n := range t.ring.Nodes() {
		t.nodes[n] = true
	}
	return nil
}

// MovePrimary reassigns the primary owner of vnode v to node `to`,
// implementing one step of imbalance-driven data balance (§III-B). When the
// target already holds a replica of v, the two owners simply swap slots —
// no data moves at all, which is why the balance planner prefers existing
// replica holders. Otherwise the old primary is replaced in slot 0 and the
// returned move tells the new owner to copy the vnode. Moving to the
// current primary is a no-op.
func (t *Table) MovePrimary(v VNodeID, to NodeID) ([]Move, error) {
	if to == "" {
		return nil, fmt.Errorf("ring: empty move target")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.nodes[to] {
		return nil, fmt.Errorf("ring: move target %q is not a member", to)
	}
	if int(v) >= t.ring.vnodes {
		return nil, fmt.Errorf("ring: vnode %d out of range", v)
	}
	owners := t.ring.assign[v]
	from := owners[0]
	if from == to {
		return nil, nil
	}
	for slot := 1; slot < len(owners); slot++ {
		if owners[slot] == to {
			// Swap: both nodes already store the vnode.
			owners[0], owners[slot] = owners[slot], owners[0]
			t.ring.bumpEpoch(v)
			t.ring.version++
			return []Move{
				{VNode: v, Slot: 0, From: from, To: to},
				{VNode: v, Slot: slot, From: to, To: from},
			}, nil
		}
	}
	owners[0] = to
	t.ring.bumpEpoch(v)
	t.ring.version++
	return []Move{{VNode: v, Slot: 0, From: from, To: to}}, nil
}

// MoveSlot reassigns one replica slot of vnode v from `from` to `to`, the
// compare-and-set commit primitive of a migration cutover: the caller names
// the occupant it streamed data away from, and the move is rejected if the
// assignment changed underneath (a concurrent eviction or rebalance won the
// race). `from` may be "" to claim a previously empty slot. The target is
// registered as a member if it was not one already — becoming an owner is
// what membership means in the assignment table. The vnode's epoch and the
// ring version are bumped on success.
func (t *Table) MoveSlot(v VNodeID, slot int, from, to NodeID) error {
	if to == "" {
		return fmt.Errorf("ring: empty move target")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(v) >= t.ring.vnodes {
		return fmt.Errorf("ring: vnode %d out of range", v)
	}
	owners := t.ring.assign[v]
	if slot < 0 || slot >= len(owners) {
		return fmt.Errorf("ring: slot %d out of range for vnode %d", slot, v)
	}
	if owners[slot] != from {
		return fmt.Errorf("%w: vnode %d slot %d held by %q, not %q", ErrStaleMove, v, slot, owners[slot], from)
	}
	if from == to {
		return nil
	}
	if t.holdsLocked(v, to) {
		return fmt.Errorf("%w: vnode %d already replicated on %q", ErrStaleMove, v, to)
	}
	owners[slot] = to
	t.nodes[to] = true
	t.ring.bumpEpoch(v)
	t.ring.version++
	return nil
}
