package ring

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"sedna/internal/kv"
)

func TestHash64Deterministic(t *testing.T) {
	a := Hash64("test-00000000000001")
	b := Hash64("test-00000000000001")
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if Hash64("test-00000000000001") == Hash64("test-00000000000002") {
		t.Fatal("adjacent keys collide")
	}
}

func TestHash64UniformOverVNodes(t *testing.T) {
	// The paper's load generator uses sequential keys; the vnode mapping
	// must still be near uniform.
	const vnodes = 128
	const keys = 128 * 1000
	counts := make([]int, vnodes)
	for i := 0; i < keys; i++ {
		k := kv.Key(fmt.Sprintf("test-%016d", i))
		counts[Hash64(k)%vnodes]++
	}
	mean := float64(keys) / vnodes
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// 127 degrees of freedom; p=0.001 critical value ~ 181. Allow slack.
	if chi2 > 200 {
		t.Fatalf("chi2 = %.1f, distribution too skewed", chi2)
	}
}

func TestVNodeForInRange(t *testing.T) {
	tb := NewTable(64, 3)
	tb.AddNode("a")
	r := tb.Snapshot()
	f := func(s string) bool {
		v := r.VNodeFor(kv.Key(s))
		return int(v) < r.NumVNodes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func checkBalanced(t *testing.T, r *Ring, nodes int) {
	t.Helper()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	active := r.ReplicaFactor()
	if nodes < active {
		active = nodes
	}
	for slot := 0; slot < active; slot++ {
		counts := map[NodeID]int{}
		for v := 0; v < r.NumVNodes(); v++ {
			o := r.Owners(VNodeID(v))[slot]
			if o == "" {
				t.Fatalf("slot %d of vnode %d unassigned with %d nodes", slot, v, nodes)
			}
			counts[o]++
		}
		min, max := math.MaxInt, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if len(counts) != nodes {
			t.Fatalf("slot %d used %d nodes, want %d", slot, len(counts), nodes)
		}
		// Distinctness constraints can leave a small residual spread.
		if max-min > 2 {
			t.Fatalf("slot %d imbalance: min=%d max=%d", slot, min, max)
		}
	}
}

func TestTableSingleNodeOwnsAll(t *testing.T) {
	tb := NewTable(100, 3)
	moves := tb.AddNode("n1")
	if len(moves) != 100 {
		t.Fatalf("moves = %d, want 100 (primary slot only)", len(moves))
	}
	r := tb.Snapshot()
	for v := 0; v < 100; v++ {
		owners := r.Owners(VNodeID(v))
		if owners[0] != "n1" || owners[1] != "" || owners[2] != "" {
			t.Fatalf("vnode %d owners = %v", v, owners)
		}
	}
}

func TestTableThreeNodesFullReplication(t *testing.T) {
	tb := NewTable(99, 3)
	tb.AddNode("n1")
	tb.AddNode("n2")
	tb.AddNode("n3")
	r := tb.Snapshot()
	checkBalanced(t, r, 3)
	// With exactly 3 nodes and 3 replicas every node holds every vnode.
	for v := 0; v < 99; v++ {
		owners := r.Owners(VNodeID(v))
		seen := map[NodeID]bool{}
		for _, o := range owners {
			seen[o] = true
		}
		if len(seen) != 3 {
			t.Fatalf("vnode %d owners not distinct: %v", v, owners)
		}
	}
}

func TestTableIncrementalJoinBalance(t *testing.T) {
	tb := NewTable(200, 3)
	for i := 1; i <= 8; i++ {
		tb.AddNode(NodeID(fmt.Sprintf("n%d", i)))
		checkBalanced(t, tb.Snapshot(), i)
	}
}

func TestTableJoinMovesOnlyToJoiner(t *testing.T) {
	tb := NewTable(120, 3)
	for i := 1; i <= 4; i++ {
		tb.AddNode(NodeID(fmt.Sprintf("n%d", i)))
	}
	moves := tb.AddNode("n5")
	for _, m := range moves {
		if m.To != "n5" {
			t.Fatalf("join churned unrelated nodes: %v", m)
		}
	}
	// Incremental scalability: the joiner takes roughly 1/5 of each slot.
	perSlot := map[int]int{}
	for _, m := range moves {
		perSlot[m.Slot]++
	}
	for slot, n := range perSlot {
		if n < 120/5-2 || n > 120/5+2 {
			t.Fatalf("slot %d moved %d vnodes to joiner, want ~%d", slot, n, 120/5)
		}
	}
}

func TestTableRemoveNodeRedistributes(t *testing.T) {
	tb := NewTable(120, 3)
	for i := 1; i <= 5; i++ {
		tb.AddNode(NodeID(fmt.Sprintf("n%d", i)))
	}
	before := tb.Snapshot()
	moves := tb.RemoveNode("n3")
	after := tb.Snapshot()
	checkBalanced(t, after, 4)
	for _, n := range after.Nodes() {
		if n == "n3" {
			t.Fatal("removed node still appears in assignment")
		}
	}
	if len(moves) == 0 {
		t.Fatal("removal produced no moves")
	}
	// Vnodes that n3 did not hold keep their owners untouched.
	for v := 0; v < 120; v++ {
		b := before.Owners(VNodeID(v))
		held := false
		for _, o := range b {
			if o == "n3" {
				held = true
			}
		}
		if held {
			continue
		}
		a := after.Owners(VNodeID(v))
		for slot := range b {
			if a[slot] != b[slot] {
				t.Fatalf("vnode %d slot %d churned (%q -> %q) though n3 was not involved", v, slot, b[slot], a[slot])
			}
		}
	}
}

func TestTableRemoveLastNode(t *testing.T) {
	tb := NewTable(10, 3)
	tb.AddNode("only")
	tb.RemoveNode("only")
	r := tb.Snapshot()
	for v := 0; v < 10; v++ {
		for _, o := range r.Owners(VNodeID(v)) {
			if o != "" {
				t.Fatalf("vnode %d still owned by %q after last node left", v, o)
			}
		}
	}
}

func TestTableDoubleAddRemoveIdempotent(t *testing.T) {
	tb := NewTable(30, 3)
	tb.AddNode("a")
	if moves := tb.AddNode("a"); moves != nil {
		t.Fatalf("re-adding member produced moves: %v", moves)
	}
	if moves := tb.RemoveNode("ghost"); moves != nil {
		t.Fatalf("removing non-member produced moves: %v", moves)
	}
}

func TestTableVersionAdvances(t *testing.T) {
	tb := NewTable(10, 2)
	v0 := tb.Snapshot().Version()
	tb.AddNode("a")
	v1 := tb.Snapshot().Version()
	tb.AddNode("b")
	v2 := tb.Snapshot().Version()
	if !(v0 < v1 && v1 < v2) {
		t.Fatalf("versions not increasing: %d %d %d", v0, v1, v2)
	}
}

func TestTableChurnProperty(t *testing.T) {
	// Property: after an arbitrary join/leave sequence the assignment is
	// valid (distinct owners) and balanced per slot.
	f := func(ops []bool) bool {
		tb := NewTable(60, 3)
		members := map[NodeID]bool{}
		next := 0
		for _, join := range ops {
			if join || len(members) == 0 {
				n := NodeID(fmt.Sprintf("n%03d", next))
				next++
				tb.AddNode(n)
				members[n] = true
			} else {
				for n := range members {
					tb.RemoveNode(n)
					delete(members, n)
					break
				}
			}
			r := tb.Snapshot()
			if err := r.Validate(); err != nil {
				return false
			}
			active := 3
			if len(members) < 3 {
				active = len(members)
			}
			for slot := 0; slot < active; slot++ {
				for v := 0; v < 60; v++ {
					if r.Owners(VNodeID(v))[slot] == "" {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVNodesOfAndPrimaryVNodesOf(t *testing.T) {
	tb := NewTable(40, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	r := tb.Snapshot()
	all := r.VNodesOf("a")
	prim := r.PrimaryVNodesOf("a")
	if len(prim) == 0 || len(all) < len(prim) {
		t.Fatalf("vnodesOf=%d primary=%d", len(all), len(prim))
	}
	for _, v := range prim {
		if r.Owners(v)[0] != "a" {
			t.Fatalf("vnode %d primary is %q", v, r.Owners(v)[0])
		}
	}
	// With 2 nodes and replica slots 0,1 filled, both nodes hold all vnodes.
	if len(all) != 40 {
		t.Fatalf("node a holds %d vnodes, want 40", len(all))
	}
}

func TestApplySnapshotRoundTrip(t *testing.T) {
	tb := NewTable(50, 3)
	tb.AddNode("x")
	tb.AddNode("y")
	snap := tb.Snapshot()

	tb2 := NewTable(50, 3)
	if err := tb2.ApplySnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got := tb2.Snapshot()
	for v := 0; v < 50; v++ {
		a, b := snap.Owners(VNodeID(v)), got.Owners(VNodeID(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vnode %d differs after ApplySnapshot", v)
			}
		}
	}
	if len(tb2.Nodes()) != 2 {
		t.Fatalf("nodes after ApplySnapshot = %v", tb2.Nodes())
	}
}

func TestRingCodecRoundTrip(t *testing.T) {
	tb := NewTable(33, 3)
	tb.AddNode("node-a")
	tb.AddNode("node-b")
	tb.AddNode("node-c")
	tb.AddNode("node-d")
	r := tb.Snapshot()
	blob := EncodeRing(r)
	got, err := DecodeRing(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != r.Version() || got.NumVNodes() != r.NumVNodes() || got.ReplicaFactor() != r.ReplicaFactor() {
		t.Fatal("header mismatch")
	}
	for v := 0; v < 33; v++ {
		a, b := r.Owners(VNodeID(v)), got.Owners(VNodeID(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vnode %d slot %d: %q != %q", v, i, a[i], b[i])
			}
		}
	}
}

func TestRingCodecPartialAssignment(t *testing.T) {
	tb := NewTable(8, 3)
	tb.AddNode("solo") // slots 1,2 remain empty
	r := tb.Snapshot()
	got, err := DecodeRing(EncodeRing(r))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		owners := got.Owners(VNodeID(v))
		if owners[0] != "solo" || owners[1] != "" || owners[2] != "" {
			t.Fatalf("vnode %d owners = %v", v, owners)
		}
	}
}

func TestRingCodecRejectsCorruption(t *testing.T) {
	tb := NewTable(8, 2)
	tb.AddNode("a")
	blob := EncodeRing(tb.Snapshot())
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeRing(blob[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	bad := append(append([]byte(nil), blob...), 0x00)
	if _, err := DecodeRing(bad); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	bad = append([]byte(nil), blob...)
	bad[0] = 9
	if _, err := DecodeRing(bad); err == nil {
		t.Fatal("accepted bad version")
	}
}

func TestImbalanceTable(t *testing.T) {
	tb := NewTable(10, 1)
	tb.AddNode("hot")
	tb.AddNode("cold")
	r := tb.Snapshot()
	stats := NewLoadStats(10)
	// Load only the vnodes whose primary is "hot".
	for _, v := range r.PrimaryVNodesOf("hot") {
		for i := 0; i < 100; i++ {
			stats.RecordRead(v)
		}
	}
	table := Imbalance(r, stats.Snapshot())
	if len(table) != 2 {
		t.Fatalf("table size = %d", len(table))
	}
	var hot, cold NodeImbalance
	for _, e := range table {
		switch e.Node {
		case "hot":
			hot = e
		case "cold":
			cold = e
		}
	}
	if hot.Share < 0.99 || cold.Share > 0.01 {
		t.Fatalf("shares: hot=%.2f cold=%.2f", hot.Share, cold.Share)
	}
	if hot.Ratio < 1.9 {
		t.Fatalf("hot ratio = %.2f, want ~2.0", hot.Ratio)
	}
	if MaxRatio(table) != hot.Ratio {
		t.Fatal("MaxRatio wrong")
	}
}

func TestImbalanceIdleCluster(t *testing.T) {
	tb := NewTable(10, 1)
	tb.AddNode("a")
	table := Imbalance(tb.Snapshot(), NewLoadStats(10).Snapshot())
	if len(table) != 1 || table[0].Share != 0 || table[0].Ratio != 0 {
		t.Fatalf("idle table = %+v", table)
	}
}

func TestPlanLoadRebalanceMovesHotVNodes(t *testing.T) {
	tb := NewTable(12, 1)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	r := tb.Snapshot()
	stats := NewLoadStats(12)
	hotVNodes := r.PrimaryVNodesOf("a")
	for _, v := range hotVNodes {
		for i := 0; i < 1000; i++ {
			stats.RecordWrite(v)
		}
	}
	moves := PlanLoadRebalance(r, stats.Snapshot(), 1.2)
	if len(moves) == 0 {
		t.Fatal("no rebalance proposed for a 3x-hot node")
	}
	for _, m := range moves {
		if m.From != "a" {
			t.Fatalf("move from cold node: %v", m)
		}
		if m.To == "a" || m.To == "" {
			t.Fatalf("bad destination: %v", m)
		}
		if m.Slot != 0 {
			t.Fatalf("load rebalance must move primaries only: %v", m)
		}
	}
}

func TestPlanLoadRebalanceQuietWhenBalanced(t *testing.T) {
	tb := NewTable(12, 1)
	tb.AddNode("a")
	tb.AddNode("b")
	r := tb.Snapshot()
	stats := NewLoadStats(12)
	for v := 0; v < 12; v++ {
		stats.RecordRead(VNodeID(v))
	}
	if moves := PlanLoadRebalance(r, stats.Snapshot(), 1.5); len(moves) != 0 {
		t.Fatalf("balanced cluster produced moves: %v", moves)
	}
}

func TestLoadStatsSizeAccounting(t *testing.T) {
	s := NewLoadStats(4)
	s.RecordSize(2, 1, 100)
	s.RecordSize(2, 1, 50)
	s.RecordSize(2, -1, -100)
	snap := s.Snapshot()
	if snap[2].Items != 1 || snap[2].Bytes != 50 {
		t.Fatalf("vnode 2 = %+v", snap[2])
	}
	if snap[0].Items != 0 {
		t.Fatal("untouched vnode has load")
	}
}

func BenchmarkVNodeFor(b *testing.B) {
	tb := NewTable(100000, 3)
	tb.AddNode("a")
	r := tb.Snapshot()
	key := kv.Key("test-00000000012345")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.VNodeFor(key)
	}
}

func BenchmarkTableAddNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := NewTable(1000, 3)
		for n := 0; n < 10; n++ {
			tb.AddNode(NodeID(fmt.Sprintf("n%d", n)))
		}
	}
}

func TestMovePrimarySwapWithReplica(t *testing.T) {
	tb := NewTable(12, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	r := tb.Snapshot()
	v := r.PrimaryVNodesOf("a")[0]
	// With 3 nodes and 3 replicas, b already holds v: the move must swap.
	moves, err := tb.MovePrimary(v, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want a swap pair", moves)
	}
	after := tb.Snapshot()
	if after.Owners(v)[0] != "b" {
		t.Fatalf("primary = %q", after.Owners(v)[0])
	}
	// a keeps a replica (the swap preserved both owners).
	held := false
	for _, o := range after.Owners(v) {
		if o == "a" {
			held = true
		}
	}
	if !held {
		t.Fatal("swap lost the old primary's replica")
	}
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMovePrimaryToNonHolder(t *testing.T) {
	tb := NewTable(12, 1)
	tb.AddNode("a")
	tb.AddNode("b")
	r := tb.Snapshot()
	v := r.PrimaryVNodesOf("a")[0]
	moves, err := tb.MovePrimary(v, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].From != "a" || moves[0].To != "b" {
		t.Fatalf("moves = %v", moves)
	}
	if tb.Snapshot().Owners(v)[0] != "b" {
		t.Fatal("primary not moved")
	}
}

func TestMovePrimaryErrors(t *testing.T) {
	tb := NewTable(4, 2)
	tb.AddNode("a")
	if _, err := tb.MovePrimary(0, "ghost"); err == nil {
		t.Fatal("move to non-member accepted")
	}
	if _, err := tb.MovePrimary(99, "a"); err == nil {
		t.Fatal("out-of-range vnode accepted")
	}
	if moves, err := tb.MovePrimary(0, "a"); err != nil || moves != nil {
		t.Fatalf("self-move = %v, %v", moves, err)
	}
}

func TestMovePrimaryBumpsVersion(t *testing.T) {
	tb := NewTable(4, 1)
	tb.AddNode("a")
	tb.AddNode("b")
	v0 := tb.Snapshot().Version()
	v := tb.Snapshot().PrimaryVNodesOf("a")[0]
	tb.MovePrimary(v, "b")
	if tb.Snapshot().Version() <= v0 {
		t.Fatal("version not bumped")
	}
}

func TestPlanLoadRebalancePrefersReplicaHolders(t *testing.T) {
	// Full replication (3 nodes, 3 replicas): every candidate holds every
	// vnode, so every planned move must be a free swap to a holder.
	tb := NewTable(12, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	r := tb.Snapshot()
	stats := NewLoadStats(12)
	for _, v := range r.PrimaryVNodesOf("a") {
		for i := 0; i < 1000; i++ {
			stats.RecordWrite(v)
		}
	}
	moves := PlanLoadRebalance(r, stats.Snapshot(), 1.2)
	if len(moves) == 0 {
		t.Fatal("no plan for a hot node")
	}
	for _, m := range moves {
		if !holdsIn(r, m.VNode, m.To) {
			t.Fatalf("move %v targets a non-holder despite full replication", m)
		}
	}
}
