package ring

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// randomRing builds a ring via a random sequence of table mutations so the
// epoch vector carries non-trivial values.
func randomRing(t *testing.T, rng *rand.Rand) *Ring {
	t.Helper()
	vnodes := 1 + rng.Intn(64)
	replicas := 1 + rng.Intn(4)
	tb := NewTable(vnodes, replicas)
	names := []NodeID{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	n := 1 + rng.Intn(len(names))
	for i := 0; i < n; i++ {
		tb.AddNode(names[i])
	}
	for i := 0; i < rng.Intn(3); i++ {
		switch rng.Intn(3) {
		case 0:
			tb.AddNode(names[rng.Intn(len(names))])
		case 1:
			live := tb.Nodes()
			if len(live) > 1 {
				tb.RemoveNode(live[rng.Intn(len(live))])
			}
		case 2:
			live := tb.Nodes()
			if len(live) > 0 {
				_, _ = tb.MovePrimary(VNodeID(rng.Intn(vnodes)), live[rng.Intn(len(live))])
			}
		}
	}
	return tb.Snapshot()
}

func ringsEqual(t *testing.T, want, got *Ring) {
	t.Helper()
	if got.Version() != want.Version() {
		t.Fatalf("version %d != %d", got.Version(), want.Version())
	}
	if got.NumVNodes() != want.NumVNodes() || got.ReplicaFactor() != want.ReplicaFactor() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumVNodes(), got.ReplicaFactor(), want.NumVNodes(), want.ReplicaFactor())
	}
	for v := 0; v < want.NumVNodes(); v++ {
		a, b := want.Owners(VNodeID(v)), got.Owners(VNodeID(v))
		if len(a) != len(b) {
			t.Fatalf("vnode %d owner count %d != %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vnode %d slot %d: %q != %q", v, i, b[i], a[i])
			}
		}
		if got.EpochOf(VNodeID(v)) != want.EpochOf(VNodeID(v)) {
			t.Fatalf("vnode %d epoch %d != %d", v, got.EpochOf(VNodeID(v)), want.EpochOf(VNodeID(v)))
		}
	}
}

// TestRingCodecPropertyRoundTrip drives the codec with many randomly built
// rings (membership churn bumps epochs) and requires a lossless round trip,
// epoch fields included.
func TestRingCodecPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0dec))
	for i := 0; i < 200; i++ {
		r := randomRing(t, rng)
		got, err := DecodeRing(EncodeRing(r))
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		ringsEqual(t, r, got)
	}
}

// TestRingCodecEpochsSurviveMutations checks that every table mutation that
// changes an assignment bumps the moved vnodes' epochs and that the bumped
// values survive the codec.
func TestRingCodecEpochsSurviveMutations(t *testing.T) {
	tb := NewTable(16, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	base := tb.Snapshot()
	moves := tb.AddNode("d")
	if len(moves) == 0 {
		t.Fatal("join moved nothing")
	}
	after := tb.Snapshot()
	for _, m := range moves {
		if after.EpochOf(m.VNode) <= base.EpochOf(m.VNode) {
			t.Fatalf("move %v did not bump epoch (%d -> %d)",
				m, base.EpochOf(m.VNode), after.EpochOf(m.VNode))
		}
	}
	got, err := DecodeRing(EncodeRing(after))
	if err != nil {
		t.Fatal(err)
	}
	ringsEqual(t, after, got)
}

// TestRingCodecDecodesV1 ensures pre-epoch snapshots still decode, with all
// epochs reading zero.
func TestRingCodecDecodesV1(t *testing.T) {
	tb := NewTable(12, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	r := tb.Snapshot()
	blob := EncodeRing(r)
	// Rewrite as format 1: flip the version byte, drop the epoch tail.
	v1 := append([]byte(nil), blob[:len(blob)-12*8]...)
	v1[0] = ringFormatV1
	got, err := DecodeRing(v1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.Version() != r.Version() {
		t.Fatalf("version %d != %d", got.Version(), r.Version())
	}
	for v := 0; v < 12; v++ {
		if got.EpochOf(VNodeID(v)) != 0 {
			t.Fatalf("v1 snapshot reported epoch %d for vnode %d", got.EpochOf(VNodeID(v)), v)
		}
		a, b := r.Owners(VNodeID(v)), got.Owners(VNodeID(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vnode %d slot %d mismatch", v, i)
			}
		}
	}
}

// TestRingCodecRejectsTruncatedAndOversize cuts a valid snapshot at every
// prefix length and also feeds implausible headers and trailing garbage; all
// must be rejected, none may panic.
func TestRingCodecRejectsTruncatedAndOversize(t *testing.T) {
	tb := NewTable(9, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	tb.RemoveNode("b") // non-zero epochs in the tail
	blob := EncodeRing(tb.Snapshot())

	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeRing(blob[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d of %d", cut, len(blob))
		} else if !errors.Is(err, ErrCorruptRing) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}

	garbage := append(append([]byte(nil), blob...), 0xfe)
	if _, err := DecodeRing(garbage); err == nil {
		t.Fatal("accepted trailing garbage")
	}

	// Oversize header fields must be rejected before any allocation is
	// attempted.
	oversize := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(oversize[9:], 1<<25) // vnode count
	if _, err := DecodeRing(oversize); !errors.Is(err, ErrCorruptRing) {
		t.Fatalf("oversize vnode count: %v", err)
	}
	oversize = append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(oversize[14:], 1<<21) // node table size
	if _, err := DecodeRing(oversize); !errors.Is(err, ErrCorruptRing) {
		t.Fatalf("oversize node table: %v", err)
	}
	zero := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(zero[9:], 0)
	if _, err := DecodeRing(zero); !errors.Is(err, ErrCorruptRing) {
		t.Fatalf("zero vnode count: %v", err)
	}
}

// TestMoveSlotCAS exercises the cutover commit primitive: stale expectations
// and duplicate holders are rejected, success bumps both the epoch and the
// ring version, and a previously unseen target becomes a member.
func TestMoveSlotCAS(t *testing.T) {
	tb := NewTable(8, 3)
	tb.AddNode("a")
	tb.AddNode("b")
	tb.AddNode("c")
	r := tb.Snapshot()
	v := VNodeID(3)
	owners := r.Owners(v)
	donor := owners[0]

	if err := tb.MoveSlot(v, 0, "wrong-node", "joiner"); !errors.Is(err, ErrStaleMove) {
		t.Fatalf("stale from: %v", err)
	}
	if err := tb.MoveSlot(v, 0, donor, owners[1]); !errors.Is(err, ErrStaleMove) {
		t.Fatalf("duplicate holder: %v", err)
	}
	if err := tb.MoveSlot(v, 0, donor, "joiner"); err != nil {
		t.Fatalf("valid move: %v", err)
	}
	after := tb.Snapshot()
	if after.Owners(v)[0] != "joiner" {
		t.Fatalf("owner after move = %q", after.Owners(v)[0])
	}
	if after.EpochOf(v) != r.EpochOf(v)+1 {
		t.Fatalf("epoch %d, want %d", after.EpochOf(v), r.EpochOf(v)+1)
	}
	if after.Version() != r.Version()+1 {
		t.Fatalf("version %d, want %d", after.Version(), r.Version()+1)
	}
	found := false
	for _, n := range tb.Nodes() {
		if n == "joiner" {
			found = true
		}
	}
	if !found {
		t.Fatal("joiner not registered as member")
	}
}
