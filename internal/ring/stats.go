package ring

import (
	"sort"
	"sync/atomic"
)

// LoadStats tracks per-virtual-node load counters: Sedna records every
// vnode's capacity and read/write frequency locally and periodically folds
// them into the per-real-node imbalance table pushed to the coordination
// service (§III-B). Counters are updated lock-free on the data path.
type LoadStats struct {
	reads  []atomic.Uint64
	writes []atomic.Uint64
	items  []atomic.Int64
	bytes  []atomic.Int64
}

// NewLoadStats allocates counters for a ring with the given vnode count.
func NewLoadStats(vnodes int) *LoadStats {
	return &LoadStats{
		reads:  make([]atomic.Uint64, vnodes),
		writes: make([]atomic.Uint64, vnodes),
		items:  make([]atomic.Int64, vnodes),
		bytes:  make([]atomic.Int64, vnodes),
	}
}

// RecordRead notes one read served for vnode v.
func (s *LoadStats) RecordRead(v VNodeID) { s.reads[v].Add(1) }

// RecordWrite notes one write applied to vnode v.
func (s *LoadStats) RecordWrite(v VNodeID) { s.writes[v].Add(1) }

// RecordSize adjusts the item count and byte footprint of vnode v; deltas
// may be negative (deletes, evictions).
func (s *LoadStats) RecordSize(v VNodeID, itemDelta, byteDelta int64) {
	s.items[v].Add(itemDelta)
	s.bytes[v].Add(byteDelta)
}

// VNodeLoad is a snapshot of one vnode's counters.
type VNodeLoad struct {
	VNode  VNodeID
	Reads  uint64
	Writes uint64
	Items  int64
	Bytes  int64
}

// Weight collapses the counters into the single scalar the balancer
// compares: operations dominate, storage footprint breaks ties.
func (l VNodeLoad) Weight() float64 {
	return float64(l.Reads+l.Writes) + float64(l.Bytes)/4096
}

// Snapshot returns the current per-vnode loads.
func (s *LoadStats) Snapshot() []VNodeLoad {
	out := make([]VNodeLoad, len(s.reads))
	for i := range out {
		out[i] = VNodeLoad{
			VNode:  VNodeID(i),
			Reads:  s.reads[i].Load(),
			Writes: s.writes[i].Load(),
			Items:  s.items[i].Load(),
			Bytes:  s.bytes[i].Load(),
		}
	}
	return out
}

// NodeImbalance summarises one real node's share of the cluster load, the
// row format of the imbalance table (§III-B).
type NodeImbalance struct {
	Node NodeID
	// Load is the summed weight of the vnodes whose primary is this node.
	Load float64
	// Share is Load divided by the cluster total (0 when the cluster is
	// idle).
	Share float64
	// Ratio is Load divided by the fair per-node load; 1.0 is perfectly
	// balanced, 2.0 means the node carries twice its share.
	Ratio float64
	// VNodes is the number of primary vnodes held.
	VNodes int
}

// Imbalance computes the imbalance table for a ring snapshot from per-vnode
// loads. Only primary ownership is charged: in Sedna the primary coordinates
// quorum traffic for its vnodes.
func Imbalance(r *Ring, loads []VNodeLoad) []NodeImbalance {
	perNode := map[NodeID]*NodeImbalance{}
	var total float64
	for _, l := range loads {
		if int(l.VNode) >= r.NumVNodes() {
			continue
		}
		owners := r.Owners(l.VNode)
		if len(owners) == 0 || owners[0] == "" {
			continue
		}
		n := owners[0]
		e := perNode[n]
		if e == nil {
			e = &NodeImbalance{Node: n}
			perNode[n] = e
		}
		w := l.Weight()
		e.Load += w
		e.VNodes++
		total += w
	}
	// Nodes with no primaries still appear with zero load.
	for _, n := range r.Nodes() {
		if perNode[n] == nil {
			perNode[n] = &NodeImbalance{Node: n}
		}
	}
	out := make([]NodeImbalance, 0, len(perNode))
	fair := 0.0
	if len(perNode) > 0 {
		fair = total / float64(len(perNode))
	}
	for _, e := range perNode {
		if total > 0 {
			e.Share = e.Load / total
		}
		if fair > 0 {
			e.Ratio = e.Load / fair
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// MaxRatio returns the largest Ratio in the table, the balancer's trigger
// metric; it returns 0 for an empty table.
func MaxRatio(table []NodeImbalance) float64 {
	max := 0.0
	for _, e := range table {
		if e.Ratio > max {
			max = e.Ratio
		}
	}
	return max
}

// PlanLoadRebalance proposes primary-slot moves that shift hot vnodes from
// nodes above the threshold ratio toward the coldest nodes. It mutates
// nothing; the cluster balancer applies the returned moves through the
// coordination service. The plan moves the hottest vnodes first and stops
// once the donor drops under the threshold.
func PlanLoadRebalance(r *Ring, loads []VNodeLoad, threshold float64) []Move {
	if threshold <= 1 {
		threshold = 1.2
	}
	table := Imbalance(r, loads)
	if len(table) < 2 {
		return nil
	}
	loadOf := map[NodeID]float64{}
	var total float64
	for _, e := range table {
		loadOf[e.Node] = e.Load
		total += e.Load
	}
	fair := total / float64(len(table))
	if fair == 0 {
		return nil
	}

	// Hot vnodes grouped by primary, hottest first.
	byPrimary := map[NodeID][]VNodeLoad{}
	for _, l := range loads {
		owners := r.Owners(l.VNode)
		if len(owners) > 0 && owners[0] != "" {
			byPrimary[owners[0]] = append(byPrimary[owners[0]], l)
		}
	}
	for _, ls := range byPrimary {
		sort.Slice(ls, func(i, j int) bool { return ls[i].Weight() > ls[j].Weight() })
	}

	var moves []Move
	for _, donor := range table {
		if donor.Load <= threshold*fair {
			continue
		}
		excess := loadOf[donor.Node] - fair
		for _, l := range byPrimary[donor.Node] {
			if excess <= 0 {
				break
			}
			// Coldest other node. Prefer a node already holding a replica
			// of this vnode: promoting an existing replica to primary is a
			// pure metadata swap with zero data motion.
			var to, toHolder NodeID
			best, bestHolder := loadOf[donor.Node], loadOf[donor.Node]
			for _, cand := range table {
				if cand.Node == donor.Node {
					continue
				}
				if holdsIn(r, l.VNode, cand.Node) {
					if loadOf[cand.Node] < bestHolder {
						toHolder, bestHolder = cand.Node, loadOf[cand.Node]
					}
				} else if loadOf[cand.Node] < best {
					to, best = cand.Node, loadOf[cand.Node]
				}
			}
			if toHolder != "" {
				to = toHolder
			}
			if to == "" {
				continue
			}
			w := l.Weight()
			if loadOf[to]+w > loadOf[donor.Node]-w+2*fair {
				continue // move would just swap who is hot
			}
			moves = append(moves, Move{VNode: l.VNode, Slot: 0, From: donor.Node, To: to})
			loadOf[donor.Node] -= w
			loadOf[to] += w
			excess -= w
		}
	}
	return moves
}

func holdsIn(r *Ring, v VNodeID, n NodeID) bool {
	for _, o := range r.Owners(v) {
		if o == n {
			return true
		}
	}
	return false
}
