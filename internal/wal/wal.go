// Package wal implements Sedna's write-ahead log, one of the paper's two
// persistency strategies (Table I: "periodically flush or write-ahead logs
// according to users' needs"). The log is a sequence of segment files of
// length-prefixed, CRC-protected records; recovery replays every intact
// record and stops cleanly at the first torn tail, which is exactly the
// guarantee a crashed Sedna node needs to rebuild its memory image.
//
// Durability is driven by group commit: under SyncAlways, concurrent
// appenders coalesce into one fsync — the first waiter becomes the sync
// leader, everyone who appended before the leader's fsync rides the same
// batch, and each caller returns only once the fsync covering its sequence
// number completed. That gives SyncAlways semantics at a per-batch rather
// than per-record fsync cost. A failed fsync is sticky: the kernel may have
// dropped the dirty pages, so the log stops acknowledging writes instead of
// pretending a later fsync could still cover them.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/obs"
	"sedna/internal/vfs"
)

// SyncPolicy controls when appended records are forced to stable storage,
// the speed/durability dial the paper exposes to users (§II, Table I).
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS; fastest, weakest.
	SyncNever SyncPolicy = iota
	// SyncInterval fsyncs at most once per interval from a background
	// goroutine.
	SyncInterval
	// SyncAlways returns from Append only after an fsync covering the
	// record completed; concurrent appends share fsyncs via group commit.
	SyncAlways
)

// String names the policy for flags and figures.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segment files. It is created when
	// missing.
	Dir string
	// SegmentBytes rotates to a fresh segment when the current one
	// exceeds this size. Zero selects 64 MiB.
	SegmentBytes int64
	// Sync selects the durability policy.
	Sync SyncPolicy
	// SyncEvery is the flush period for SyncInterval; zero selects 50ms.
	SyncEvery time.Duration
	// GroupWindow is how long a group-commit leader waits before issuing
	// its fsync, letting more appends join the batch. Zero means no
	// artificial delay: batches still form naturally out of the appends
	// that arrive while the previous fsync is in flight.
	GroupWindow time.Duration
	// GroupBytes short-circuits the GroupWindow wait once this many bytes
	// are already pending. Zero selects 256 KiB.
	GroupBytes int64
	// NoGroupCommit forces one fsync per append under SyncAlways — the
	// pre-group-commit behaviour, kept as the benchmark baseline.
	NoGroupCommit bool
	// FS is the filesystem; nil selects the real one (vfs.OS). Tests
	// inject vfs.Fault to deliver fsync errors, torn writes and crashes.
	FS vfs.FS
	// Obs receives the log's metrics (wal.appends, wal.fsync_batches,
	// wal.fsync_wait_ns, wal.fsync_errors); nil disables.
	Obs *obs.Registry
}

// Record is one logged mutation. The WAL does not interpret the payload;
// Sedna logs its replica-level operations (op code + key + encoded row).
type Record struct {
	// Seq is the record's log sequence number, assigned by Append and
	// reported during replay.
	Seq uint64
	// Payload is the opaque record body.
	Payload []byte
}

// ErrCorrupt reports a record that failed its CRC inside the log body (not
// at the tail, where truncation is expected after a crash and tolerated).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("wal: closed")

const (
	recordHeader = 4 + 8 + 4 // length, seq, crc
	segPrefix    = "seg-"
	segSuffix    = ".wal"
	// quarantineSuffix is appended to a segment that failed its CRC
	// mid-log; the bytes are kept for forensics but the segment no longer
	// participates in replay or sequence numbering.
	quarantineSuffix = ".quarantined"
)

// recBufPool recycles record encode buffers (header + payload), following
// the owned-buffer discipline of the transport frame pool: Append draws a
// buffer, writes it to the segment, and returns it before unlocking.
var recBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// Log is an append-only segmented write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	opts Options
	fs   vfs.FS

	mu       sync.Mutex
	seg      vfs.File
	segBase  uint64 // first seq of the open segment
	segSize  int64
	nextSeq  uint64
	appended uint64 // highest seq written to the OS
	dirty    bool
	closed   bool

	// Group-commit state. Lock order is mu before gmu; waitDurable holds
	// neither while the leader runs its fsync.
	gmu     sync.Mutex
	gcond   *sync.Cond
	durable uint64 // highest fsync-covered seq
	syncing bool   // a group-commit leader is in flight

	pending atomic.Int64             // bytes appended since the last fsync
	failed  atomic.Pointer[syncFail] // sticky fsync failure

	flushStop chan struct{}
	flushDone chan struct{}

	nAppends, nBatches  *obs.Counter
	nFsyncErrs, nWaitNs *obs.Counter
	hWait               *obs.Histogram
}

type syncFail struct{ err error }

// Open creates or resumes the log in opts.Dir. Existing segments are left
// in place; Append continues after the highest sequence found. A torn or
// corrupt tail in the newest segment is truncated away so new appends
// land after the intact prefix instead of hiding behind unreadable bytes.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if opts.GroupBytes <= 0 {
		opts.GroupBytes = 256 << 10
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		opts: opts, fs: opts.FS, nextSeq: 1,
		nAppends:   opts.Obs.Counter("wal.appends"),
		nBatches:   opts.Obs.Counter("wal.fsync_batches"),
		nFsyncErrs: opts.Obs.Counter("wal.fsync_errors"),
		nWaitNs:    opts.Obs.Counter("wal.fsync_wait_ns"),
		hWait:      opts.Obs.Histogram("wal.fsync_wait"),
	}
	l.gcond = sync.NewCond(&l.gmu)

	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	l.durable = l.appended // everything on disk at open is as durable as it gets
	if opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func segName(base uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix)
}

func listSegments(fsys vfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// openSegmentLocked resumes the newest existing segment (self-healing its
// tail) or creates the first one. New segment files are followed by a
// directory fsync: without it a crash can forget the file exists even
// though its records were fsynced.
func (l *Log) openSegmentLocked() error {
	segs, err := listSegments(l.fs, l.opts.Dir)
	if err != nil {
		return err
	}
	created := false
	var base uint64
	if len(segs) > 0 {
		base = segs[len(segs)-1]
	} else {
		base = l.nextSeq
		created = true
	}
	path := filepath.Join(l.opts.Dir, segName(base))

	var intactLen int64
	if !created {
		// Scan the resumed segment: sequence numbering continues after the
		// highest intact record, and any bytes past the intact prefix (a
		// torn append, or bit rot in the tail) are truncated away so the
		// next append is reachable by replay.
		maxSeq, okLen, scanErr := scanSegment(l.fs, path)
		if scanErr != nil {
			return scanErr
		}
		if maxSeq >= l.nextSeq {
			l.nextSeq = maxSeq + 1
		}
		if maxSeq == 0 && base >= l.nextSeq {
			// Empty tail segment: keep numbering consistent.
			l.nextSeq = base
		}
		intactLen = okLen
	}

	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := st.Size()
	if !created && size > intactLen {
		if err := f.Truncate(intactLen); err != nil {
			f.Close()
			return fmt.Errorf("wal: heal tail of %s: %w", path, err)
		}
		size = intactLen
	}
	if created {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	l.seg = f
	l.segBase = base
	l.segSize = size
	l.appended = l.nextSeq - 1
	return nil
}

// Failed returns the sticky fsync error, or nil while the log is healthy.
// Once non-nil the log acknowledges nothing further; the node should stop
// acking durable writes and report itself degraded.
func (l *Log) Failed() error {
	if f := l.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

func (l *Log) fail(err error) {
	l.failed.CompareAndSwap(nil, &syncFail{err: err})
	l.nFsyncErrs.Inc()
}

// Append writes one record and returns its sequence number, honouring the
// configured sync policy before returning: under SyncAlways it blocks until
// an fsync covering the record completed (sharing that fsync with every
// concurrent appender). Append is AppendNoWait followed by WaitDurable.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, err := l.AppendNoWait(payload)
	if err != nil {
		return 0, err
	}
	if l.opts.Sync != SyncAlways {
		return seq, nil
	}
	return seq, l.WaitDurable(seq)
}

// AppendNoWait writes one record and returns without waiting for
// durability, whatever the sync policy. Callers needing the SyncAlways
// guarantee follow up with WaitDurable(seq); the split lets a caller do
// atomic bookkeeping against the assigned sequence number (e.g. the
// dirty-key set feeding delta snapshots) without blocking every writer
// behind the group-commit fsync.
func (l *Log) AppendNoWait(payload []byte) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if err := l.Failed(); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: degraded: %w", err)
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	seq := l.nextSeq

	bufp := recBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	n, werr := l.seg.Write(buf)
	*bufp = buf
	recBufPool.Put(bufp)
	if werr != nil {
		// A short write left a torn record at the tail; erase it so later
		// appends stay reachable by replay. If even that fails the file
		// state is unknowable — go sticky-degraded.
		if n > 0 {
			if terr := l.seg.Truncate(l.segSize); terr != nil {
				l.fail(fmt.Errorf("wal: truncate after torn write: %w", terr))
			}
		}
		l.mu.Unlock()
		return 0, werr
	}
	l.nextSeq++
	l.segSize += int64(len(buf))
	l.appended = seq
	l.dirty = true
	l.pending.Add(int64(len(buf)))
	l.mu.Unlock()
	l.nAppends.Inc()
	return seq, nil
}

// WaitDurable blocks until an fsync covering seq completed. The first
// caller to find no sync in flight becomes the leader and issues the fsync
// for everyone who appended before it ran. With NoGroupCommit each waiter
// issues its own fsync — the benchmark baseline.
func (l *Log) WaitDurable(seq uint64) error {
	if l.opts.NoGroupCommit {
		l.mu.Lock()
		target, err := l.syncLocked()
		l.mu.Unlock()
		l.advanceDurable(target, err)
		return err
	}
	start := time.Now()
	l.gmu.Lock()
	for {
		if l.durable >= seq {
			l.gmu.Unlock()
			wait := time.Since(start)
			l.nWaitNs.Add(uint64(wait))
			l.hWait.Observe(wait)
			return nil
		}
		if err := l.Failed(); err != nil {
			l.gmu.Unlock()
			return fmt.Errorf("wal: degraded: %w", err)
		}
		if !l.syncing {
			l.syncing = true
			l.gmu.Unlock()
			l.leaderSync()
			l.gmu.Lock()
			continue
		}
		l.gcond.Wait()
	}
}

// leaderSync runs one group-commit round: optionally dwell for GroupWindow
// to let the batch grow, then fsync whatever has been appended.
func (l *Log) leaderSync() {
	if w := l.opts.GroupWindow; w > 0 && l.pending.Load() < l.opts.GroupBytes {
		time.Sleep(w)
	}
	l.mu.Lock()
	target, err := l.syncLocked()
	l.mu.Unlock()
	l.gmu.Lock()
	l.syncing = false
	l.gmu.Unlock()
	l.advanceDurable(target, err)
}

// syncLocked fsyncs the open segment (records in previous segments were
// fsynced at rotation) and returns the highest sequence the fsync covers.
// Callers must hold l.mu.
func (l *Log) syncLocked() (uint64, error) {
	target := l.appended
	if !l.dirty || l.seg == nil {
		return target, l.Failed()
	}
	if err := l.Failed(); err != nil {
		return target, err
	}
	if err := l.seg.Sync(); err != nil {
		l.fail(err)
		return target, err
	}
	l.dirty = false
	l.pending.Store(0)
	l.nBatches.Inc()
	return target, nil
}

// advanceDurable publishes a completed fsync and wakes every waiter whose
// sequence it covers (or all of them, on failure — they observe Failed).
func (l *Log) advanceDurable(target uint64, err error) {
	l.gmu.Lock()
	if err == nil && target > l.durable {
		l.durable = target
	}
	l.gmu.Unlock()
	l.gcond.Broadcast()
}

func (l *Log) rotateLocked() error {
	if _, err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	path := filepath.Join(l.opts.Dir, segName(l.nextSeq))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// Make the new segment's directory entry durable before writing records
	// into it; otherwise a crash can lose a whole fsynced segment.
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.segBase = l.nextSeq
	l.segSize = 0
	return nil
}

// Sync forces buffered records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	target, err := l.syncLocked()
	l.mu.Unlock()
	l.advanceDurable(target, err)
	return err
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync()
		case <-l.flushStop:
			l.Sync()
			return
		}
	}
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// DurableSeq returns the highest sequence covered by a completed fsync.
func (l *Log) DurableSeq() uint64 {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	return l.durable
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	l.mu.Lock()
	l.closed = true
	target, serr := l.syncLocked()
	cerr := l.seg.Close()
	l.mu.Unlock()
	l.advanceDurable(target, serr)
	if serr != nil && !errors.Is(serr, ErrClosed) {
		return serr
	}
	return cerr
}

// ReplayStats reports what a replay salvaged and what it gave up on.
type ReplayStats struct {
	// Records is the count of intact records delivered to the callback.
	Records uint64
	// SegmentsQuarantined counts segments renamed aside after a mid-log
	// CRC failure; their unreadable remainder is lost but every later
	// segment still replays.
	SegmentsQuarantined uint64
	// RecordsQuarantined counts records lost to quarantined segments —
	// exact when a later segment pins the sequence boundary, a lower
	// bound of 1 otherwise.
	RecordsQuarantined uint64
}

// ReplayOptions parameterises ReplayWith.
type ReplayOptions struct {
	// FS is the filesystem; nil selects vfs.OS.
	FS vfs.FS
	// Dir is the log directory.
	Dir string
	// From skips records with Seq < From.
	From uint64
	// Quarantine makes mid-log corruption survivable: the damaged
	// segment's intact prefix replays, the file is renamed aside, and
	// replay continues with the next segment. Without it (the strict
	// default) mid-log corruption aborts with ErrCorrupt.
	Quarantine bool
}

// Replay invokes fn for every record with Seq >= from, in order, across all
// segments. A torn record at the very tail of the newest segment ends the
// replay without error (the crash happened mid-append); corruption anywhere
// else returns ErrCorrupt.
func Replay(dir string, from uint64, fn func(Record) error) error {
	_, err := ReplayWith(ReplayOptions{Dir: dir, From: from}, fn)
	return err
}

// ReplayWith is Replay with an injectable filesystem and optional
// quarantining of corrupt segments.
func ReplayWith(opts ReplayOptions, fn func(Record) error) (ReplayStats, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	var stats ReplayStats
	segs, err := listSegments(fsys, opts.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil
		}
		return stats, err
	}
	for i, base := range segs {
		lastSegment := i == len(segs)-1
		path := filepath.Join(opts.Dir, segName(base))
		res := replaySegment(fsys, path, opts.From, lastSegment, func(r Record) error {
			stats.Records++
			return fn(r)
		})
		if res.err == nil {
			continue
		}
		if !errors.Is(res.err, ErrCorrupt) || !opts.Quarantine {
			return stats, res.err
		}
		// Quarantine: keep the damaged bytes for forensics, drop the
		// segment from the log, and carry on with the rest.
		if qerr := fsys.Rename(path, path+quarantineSuffix); qerr != nil {
			return stats, fmt.Errorf("wal: quarantine %s: %w", path, qerr)
		}
		if qerr := fsys.SyncDir(opts.Dir); qerr != nil {
			return stats, qerr
		}
		stats.SegmentsQuarantined++
		// The next segment's base pins exactly how many records this one
		// held; everything after the last intact record is lost. When the
		// corruption hit the very first record, lastSeq is zero — the
		// segment base still bounds the count.
		lastGood := res.lastSeq
		if lastGood < base-1 {
			lastGood = base - 1
		}
		lost := uint64(1)
		if i+1 < len(segs) && segs[i+1] > lastGood+1 {
			lost = segs[i+1] - lastGood - 1
		}
		stats.RecordsQuarantined += lost
	}
	return stats, nil
}

// segScan is the outcome of reading one segment.
type segScan struct {
	lastSeq  uint64 // highest intact seq delivered
	intactLn int64  // byte length of the intact record prefix
	err      error  // nil, ErrCorrupt-wrapped, or a callback/io error
}

// replaySegment walks one segment. A short or CRC-failing record that runs
// to EOF is a torn tail: tolerated (silently ends the scan) when
// tolerateTear, ErrCorrupt otherwise. A CRC failure with more bytes after
// it is corruption regardless.
func replaySegment(fsys vfs.FS, path string, from uint64, tolerateTear bool, fn func(Record) error) segScan {
	var sc segScan
	data, err := fsys.ReadFile(path)
	if err != nil {
		sc.err = err
		return sc
	}
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeader {
			if tolerateTear {
				return sc
			}
			sc.err = fmt.Errorf("%w: torn header in %s", ErrCorrupt, path)
			return sc
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		seq := binary.LittleEndian.Uint64(data[off+4:])
		crc := binary.LittleEndian.Uint32(data[off+12:])
		if n < 0 || len(data)-off-recordHeader < n {
			if tolerateTear {
				return sc
			}
			sc.err = fmt.Errorf("%w: torn payload in %s", ErrCorrupt, path)
			return sc
		}
		payload := data[off+recordHeader : off+recordHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			if tolerateTear && off+recordHeader+n == len(data) {
				return sc // torn final record
			}
			sc.err = fmt.Errorf("%w: bad crc at seq %d in %s", ErrCorrupt, seq, path)
			return sc
		}
		if seq >= from {
			if err := fn(Record{Seq: seq, Payload: append([]byte(nil), payload...)}); err != nil {
				sc.err = err
				return sc
			}
		}
		sc.lastSeq = seq
		off += recordHeader + n
		sc.intactLn = int64(off)
	}
	return sc
}

// Truncate removes whole segments whose records all precede upTo; it is
// called after a snapshot makes the prefix redundant. The segment containing
// upTo is kept.
func Truncate(dir string, upTo uint64) error {
	return TruncateFS(vfs.OS, dir, upTo)
}

// TruncateFS is Truncate over an injectable filesystem. Removals are made
// durable with a directory fsync.
func TruncateFS(fsys vfs.FS, dir string, upTo uint64) error {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return err
	}
	removed := false
	for i, base := range segs {
		// A segment may be deleted when the NEXT segment starts at or
		// before upTo (so every record here is < upTo).
		if i+1 < len(segs) && segs[i+1] <= upTo {
			if err := fsys.Remove(filepath.Join(dir, segName(base))); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fsys.SyncDir(dir)
	}
	return nil
}

// scanSegment returns the highest intact sequence number in the segment and
// the byte length of its intact prefix, stopping (without error) at the
// first record that fails validation.
func scanSegment(fsys vfs.FS, path string) (uint64, int64, error) {
	sc := replaySegment(fsys, path, 0, false, func(Record) error { return nil })
	if sc.err != nil && !errors.Is(sc.err, ErrCorrupt) {
		return 0, 0, sc.err
	}
	return sc.lastSeq, sc.intactLn, nil
}
