// Package wal implements Sedna's write-ahead log, one of the paper's two
// persistency strategies (Table I: "periodically flush or write-ahead logs
// according to users' needs"). The log is a sequence of segment files of
// length-prefixed, CRC-protected records; recovery replays every intact
// record and stops cleanly at the first torn tail, which is exactly the
// guarantee a crashed Sedna node needs to rebuild its memory image.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when appended records are forced to stable storage,
// the speed/durability dial the paper exposes to users (§II, Table I).
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS; fastest, weakest.
	SyncNever SyncPolicy = iota
	// SyncInterval fsyncs at most once per interval from a background
	// goroutine.
	SyncInterval
	// SyncAlways fsyncs after every append; slowest, strongest.
	SyncAlways
)

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segment files. It is created when
	// missing.
	Dir string
	// SegmentBytes rotates to a fresh segment when the current one
	// exceeds this size. Zero selects 64 MiB.
	SegmentBytes int64
	// Sync selects the durability policy.
	Sync SyncPolicy
	// SyncEvery is the flush period for SyncInterval; zero selects 50ms.
	SyncEvery time.Duration
}

// Record is one logged mutation. The WAL does not interpret the payload;
// Sedna logs its replica-level operations (op code + key + encoded row).
type Record struct {
	// Seq is the record's log sequence number, assigned by Append and
	// reported during replay.
	Seq uint64
	// Payload is the opaque record body.
	Payload []byte
}

// ErrCorrupt reports a record that failed its CRC inside the log body (not
// at the tail, where truncation is expected after a crash and tolerated).
var ErrCorrupt = errors.New("wal: corrupt record")

const (
	recordHeader = 4 + 8 + 4 // length, seq, crc
	segPrefix    = "seg-"
	segSuffix    = ".wal"
)

// Log is an append-only segmented write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	opts Options

	mu      sync.Mutex
	seg     *os.File
	segBase uint64 // first seq of the open segment
	segSize int64
	nextSeq uint64
	dirty   bool
	closed  bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open creates or resumes the log in opts.Dir. Existing segments are left
// in place; Append continues after the highest sequence found.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, nextSeq: 1}

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Find the next sequence by scanning the last segment.
		last := segs[len(segs)-1]
		maxSeq, scanErr := scanMaxSeq(filepath.Join(opts.Dir, segName(last)))
		if scanErr != nil {
			return nil, scanErr
		}
		if maxSeq >= l.nextSeq {
			l.nextSeq = maxSeq + 1
		}
		if maxSeq == 0 && last >= l.nextSeq {
			// Empty tail segment: keep numbering consistent.
			l.nextSeq = last
		}
	}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func segName(base uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix)
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(numStr, 10, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// openSegmentLocked opens (appending) the segment whose base is nextSeq, or
// the newest existing segment when resuming.
func (l *Log) openSegmentLocked() error {
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	var base uint64
	if len(segs) > 0 {
		base = segs[len(segs)-1]
	} else {
		base = l.nextSeq
	}
	path := filepath.Join(l.opts.Dir, segName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.segBase = base
	l.segSize = st.Size()
	return nil
}

// Append writes one record and returns its sequence number, honouring the
// configured sync policy before returning.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: closed")
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	l.nextSeq++

	buf := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeader:], payload)
	if _, err := l.seg.Write(buf); err != nil {
		return 0, err
	}
	l.segSize += int64(len(buf))
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.seg.Sync(); err != nil {
			return 0, err
		}
		l.dirty = false
	}
	return seq, nil
}

func (l *Log) rotateLocked() error {
	if err := l.seg.Sync(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	path := filepath.Join(l.opts.Dir, segName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.seg = f
	l.segBase = l.nextSeq
	l.segSize = 0
	return nil
}

// Sync forces buffered records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync()
		case <-l.flushStop:
			l.Sync()
			return
		}
	}
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.dirty {
		l.seg.Sync()
	}
	return l.seg.Close()
}

// Replay invokes fn for every record with Seq >= from, in order, across all
// segments. A torn record at the very tail of the newest segment ends the
// replay without error (the crash happened mid-append); corruption anywhere
// else returns ErrCorrupt.
func Replay(dir string, from uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for i, base := range segs {
		lastSegment := i == len(segs)-1
		if err := replaySegment(filepath.Join(dir, segName(base)), from, lastSegment, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, from uint64, tolerateTear bool, fn func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < recordHeader {
			if tolerateTear {
				return nil
			}
			return fmt.Errorf("%w: torn header in %s", ErrCorrupt, path)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		seq := binary.LittleEndian.Uint64(data[off+4:])
		crc := binary.LittleEndian.Uint32(data[off+12:])
		if len(data)-off-recordHeader < n {
			if tolerateTear {
				return nil
			}
			return fmt.Errorf("%w: torn payload in %s", ErrCorrupt, path)
		}
		payload := data[off+recordHeader : off+recordHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			if tolerateTear && off+recordHeader+n == len(data) {
				return nil // torn final record
			}
			return fmt.Errorf("%w: bad crc at seq %d in %s", ErrCorrupt, seq, path)
		}
		if seq >= from {
			if err := fn(Record{Seq: seq, Payload: append([]byte(nil), payload...)}); err != nil {
				return err
			}
		}
		off += recordHeader + n
	}
	return nil
}

// Truncate removes whole segments whose records all precede upTo; it is
// called after a snapshot makes the prefix redundant. The segment containing
// upTo is kept.
func Truncate(dir string, upTo uint64) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, base := range segs {
		// A segment may be deleted when the NEXT segment starts at or
		// before upTo (so every record here is < upTo).
		if i+1 < len(segs) && segs[i+1] <= upTo {
			if err := os.Remove(filepath.Join(dir, segName(base))); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanMaxSeq returns the highest intact sequence number in the segment.
func scanMaxSeq(path string) (uint64, error) {
	var max uint64
	err := replaySegment(path, 0, true, func(r Record) error {
		if r.Seq > max {
			max = r.Seq
		}
		return nil
	})
	return max, err
}
