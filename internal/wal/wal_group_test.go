package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sedna/internal/obs"
	"sedna/internal/vfs"
)

// TestGroupCommitCoalesces proves the tentpole property: many concurrent
// SyncAlways appenders share far fewer fsyncs than appends, yet every
// append returns only after a covering fsync.
func TestGroupCommitCoalesces(t *testing.T) {
	fsys := vfs.NewFault()
	reg := obs.NewRegistry()
	// The in-memory fsync completes instantly, so natural batching (appends
	// piling up behind a slow disk fsync) has no window to form; a short
	// GroupWindow stands in for the disk latency.
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, GroupWindow: time.Millisecond, FS: fsys, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const workers = 16
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append([]byte{byte(w), byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				if d := l.DurableSeq(); d < seq {
					t.Errorf("append %d returned before durable (durable=%d)", seq, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * per)
	syncs := uint64(fsys.Syncs())
	if syncs == 0 || syncs >= total {
		t.Fatalf("fsyncs = %d for %d appends; group commit did not coalesce", syncs, total)
	}
	t.Logf("%d appends coalesced into %d fsyncs", total, syncs)
	if got := reg.Counter("wal.appends").Load(); got != total {
		t.Fatalf("wal.appends = %d, want %d", got, total)
	}
	if got := reg.Counter("wal.fsync_batches").Load(); got == 0 || got > syncs {
		t.Fatalf("wal.fsync_batches = %d (fsyncs %d)", got, syncs)
	}
}

// TestGroupCommitDurableAcrossCrash asserts the acked-write invariant at
// the filesystem level: whatever Append acknowledged under SyncAlways is
// present in the crash image.
func TestGroupCommitDurableAcrossCrash(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acked = append(acked, seq)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// Crash WITHOUT Close: only fsynced state survives.
	img := fsys.CrashFS()
	seen := map[uint64]bool{}
	if _, err := ReplayWith(ReplayOptions{FS: img, Dir: "/wal"}, func(r Record) error {
		seen[r.Seq] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, seq := range acked {
		if !seen[seq] {
			t.Fatalf("acked seq %d missing from crash image", seq)
		}
	}
	l.Close()
}

func TestStickyFsyncErrorDegradesLog(t *testing.T) {
	fsys := vfs.NewFault()
	reg := obs.NewRegistry()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, FS: fsys, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	fsys.FailFsync(boom)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("append during fsync failure = %v, want %v", err, boom)
	}
	if err := l.Failed(); !errors.Is(err, boom) {
		t.Fatalf("Failed() = %v", err)
	}
	// Sticky: even a record that would need no new fsync is refused.
	if _, err := l.Append([]byte("still doomed")); !errors.Is(err, boom) {
		t.Fatalf("append after sticky failure = %v", err)
	}
	if got := reg.Counter("wal.fsync_errors").Load(); got == 0 {
		t.Fatal("wal.fsync_errors not incremented")
	}
}

func TestTornWriteTruncatedAndRetryable(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	// The next write tears after 3 bytes and reports ENOSPC.
	fsys.FailWritesAfter(3, nil)
	if _, err := l.Append([]byte("torn")); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("torn append = %v", err)
	}
	// Space freed: the log must still be appendable and replayable — the
	// torn bytes were truncated away, not left to poison replay.
	fsys.FailWritesAfter(-1, nil)
	seq, err := l.Append([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after torn write = %d, want 2 (no burned seq)", seq)
	}
	var got []string
	if _, err := ReplayWith(ReplayOptions{FS: fsys, Dir: "/wal"}, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("replay after torn write = %v", got)
	}
}

func TestSegmentCreateSurvivesCrashViaDirFsync(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, SegmentBytes: 64, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if fsys.DirSyncs() < 2 {
		t.Fatalf("dir fsyncs = %d, want one per segment create", fsys.DirSyncs())
	}
	// Crash without Close: every acked record must replay from the image,
	// which requires the rotated segments' directory entries to be durable.
	img := fsys.CrashFS()
	count := 0
	if _, err := ReplayWith(ReplayOptions{FS: img, Dir: "/wal"}, func(Record) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("crash image replayed %d of 10 acked records", count)
	}
	l.Close()
}

func TestQuarantineSalvagesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 12; i++ {
		l.Append([]byte("0123456789abcdef0123456789abcdef"))
	}
	l.Close()
	segs, _ := listSegments(vfs.OS, dir)
	if len(segs) < 3 {
		t.Fatalf("segments = %d, need >= 3", len(segs))
	}
	// Corrupt a payload byte mid-log (second segment, not the tail).
	path := filepath.Join(dir, segName(segs[1]))
	data, _ := os.ReadFile(path)
	data[recordHeader] ^= 0xff
	os.WriteFile(path, data, 0o644)

	// Strict replay still refuses.
	if err := Replay(dir, 0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict replay = %v, want ErrCorrupt", err)
	}

	var seqs []uint64
	stats, err := ReplayWith(ReplayOptions{Dir: dir, Quarantine: true}, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("quarantine replay = %v", err)
	}
	if stats.SegmentsQuarantined != 1 {
		t.Fatalf("segments quarantined = %d", stats.SegmentsQuarantined)
	}
	// The corrupt record and everything after it in its segment are lost —
	// never more than the whole segment, and the next segment's base pins
	// the exact count.
	segSpan := segs[2] - segs[1]
	if stats.RecordsQuarantined == 0 || stats.RecordsQuarantined > segSpan {
		t.Fatalf("records quarantined = %d, want in (0,%d]", stats.RecordsQuarantined, segSpan)
	}
	if uint64(len(seqs))+stats.RecordsQuarantined != 12 {
		t.Fatalf("salvaged %d + lost %d != 12", len(seqs), stats.RecordsQuarantined)
	}
	// Records after the quarantined segment made it.
	if seqs[len(seqs)-1] != 12 {
		t.Fatalf("last salvaged seq = %d, want 12", seqs[len(seqs)-1])
	}
	// The quarantined file is kept under its new name and no longer lists.
	segsAfter, _ := listSegments(vfs.OS, dir)
	if len(segsAfter) != len(segs)-1 {
		t.Fatalf("segments after quarantine = %d, want %d", len(segsAfter), len(segs)-1)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("quarantined bytes not preserved: %v", err)
	}
	// A second replay is clean — the damage is gone from the log.
	count := 0
	stats2, err := ReplayWith(ReplayOptions{Dir: dir, Quarantine: true}, func(Record) error {
		count++
		return nil
	})
	if err != nil || stats2.SegmentsQuarantined != 0 || count != len(seqs) {
		t.Fatalf("second replay: count=%d stats=%+v err=%v", count, stats2, err)
	}
}

func TestSelfHealingTailTruncatesOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Append([]byte("keep-1"))
	l.Append([]byte("keep-2"))
	l.Close()
	segs, _ := listSegments(vfs.OS, dir)
	path := filepath.Join(dir, segName(segs[0]))
	full, _ := os.ReadFile(path)
	os.WriteFile(path, full[:len(full)-3], 0o644) // torn tail

	l2 := openTest(t, dir, Options{})
	seq, err := l2.Append([]byte("keep-2-again"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("healed log reissued seq %d, want 2", seq)
	}
	l2.Close()
	// The file contains no torn bytes: replay sees intact records only.
	recs := collect(t, dir, 0)
	if len(recs) != 2 || string(recs[1].Payload) != "keep-2-again" {
		t.Fatalf("records after heal = %+v", recs)
	}
	st, _ := os.Stat(path)
	want := int64(len(full)) - int64(recordHeader) - int64(len("keep-2")) + int64(recordHeader) + int64(len("keep-2-again"))
	if st.Size() != want {
		t.Fatalf("segment size = %d, want %d (torn bytes erased)", st.Size(), want)
	}
}

func TestGroupWindowBatches(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, GroupWindow: 2e6 /* 2ms */, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := l.Append([]byte("payload")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if syncs := fsys.Syncs(); syncs >= workers*10 {
		t.Fatalf("fsyncs = %d with group window, want coalescing", syncs)
	}
}

func TestNoGroupCommitFsyncsPerAppend(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, NoGroupCommit: true, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if syncs := fsys.Syncs(); syncs != 5 {
		t.Fatalf("fsyncs = %d, want exactly one per append", syncs)
	}
}

func TestTruncateDurableAcrossCrash(t *testing.T) {
	fsys := vfs.NewFault()
	l, err := Open(Options{Dir: "/wal", Sync: SyncAlways, SegmentBytes: 64, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append([]byte("0123456789abcdef0123456789abcdef"))
	}
	l.Close()
	segsBefore, _ := listSegments(fsys, "/wal")
	if err := TruncateFS(fsys, "/wal", 9); err != nil {
		t.Fatal(err)
	}
	img := fsys.CrashFS()
	segsAfter, _ := listSegments(img, "/wal")
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncate not durable in crash image (%d -> %d)", len(segsBefore), len(segsAfter))
	}
}
