package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sedna/internal/vfs"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, dir string, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := Replay(dir, from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	l.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Close()
	recs := collect(t, dir, 6)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records from seq 6", len(recs))
	}
	if recs[0].Seq != 6 {
		t.Fatalf("first seq = %d", recs[0].Seq)
	}
}

func TestReplayEmptyOrMissingDir(t *testing.T) {
	if recs := collect(t, t.TempDir(), 0); len(recs) != 0 {
		t.Fatal("records from empty dir")
	}
	if err := Replay(filepath.Join(t.TempDir(), "nope"), 0, func(Record) error { return nil }); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	l.Close()

	l2 := openTest(t, dir, Options{})
	seq, err := l2.Append([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", seq)
	}
	l2.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 3 || string(recs[2].Payload) != "c" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 256})
	payload := make([]byte, 64)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("segments = %d, want rotation to have occurred", len(segs))
	}
	recs := collect(t, dir, 0)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records across segments", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("gap in sequence at %d: %d", i, r.Seq)
		}
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2"))
	l.Close()

	// Simulate a crash mid-append: chop bytes off the segment tail.
	segs, _ := listSegments(vfs.OS, dir)
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != 1 || string(recs[0].Payload) != "good-1" {
		t.Fatalf("records after torn tail = %+v", recs)
	}

	// Appending after recovery must not reuse the torn sequence... the
	// next writer scans intact records only, so seq 2 is reissued; verify
	// the log remains replayable.
	l2 := openTest(t, dir, Options{})
	if _, err := l2.Append([]byte("good-3")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		l.Append([]byte("0123456789abcdef"))
	}
	l.Close()
	segs, _ := listSegments(vfs.OS, dir)
	if len(segs) < 2 {
		t.Fatal("need multiple segments")
	}
	// Corrupt a payload byte in the FIRST segment (not the tail).
	path := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(path)
	data[recordHeader] ^= 0xff
	os.WriteFile(path, data, 0o644)

	err := Replay(dir, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Append([]byte("x"))
	l.Close()
	sentinel := errors.New("stop")
	if err := Replay(dir, 0, func(Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		l.Append([]byte("0123456789abcdef0123456789abcdef"))
	}
	l.Close()
	segsBefore, _ := listSegments(vfs.OS, dir)
	if len(segsBefore) < 3 {
		t.Fatalf("segments = %d", len(segsBefore))
	}
	// Snapshot covered through seq 20: earlier whole segments disappear.
	if err := Truncate(dir, 20); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(vfs.OS, dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncate removed nothing (%d -> %d)", len(segsBefore), len(segsAfter))
	}
	// Every record from 20 on must still replay.
	recs := collect(t, dir, 20)
	want := 30 - 20 + 1
	if len(recs) != want {
		t.Fatalf("replayed %d records from 20, want %d", len(recs), want)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	l.Append([]byte("x"))
	time.Sleep(30 * time.Millisecond)
	l.mu.Lock()
	dirty := l.dirty
	l.mu.Unlock()
	if dirty {
		t.Fatal("interval flusher did not sync")
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	recs := collect(t, dir, 0)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d, want %d", len(recs), workers*per)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 1 || len(recs[0].Payload) != 0 {
		t.Fatalf("records = %+v", recs)
	}
}

func BenchmarkAppendNoSync(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSyncAlways(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCrashPointPropertyPrefixRecovery(t *testing.T) {
	// Property: truncating the log at ANY byte boundary (a crash mid-append)
	// recovers exactly a prefix of the appended records — never corrupt
	// data, never a gap followed by more records.
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d-%s", i, "payload"))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(vfs.OS, dir)
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	path := filepath.Join(dir, segName(segs[0]))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		err := Replay(dir, 0, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error %v", cut, err)
		}
		for i, r := range got {
			if r.Seq != uint64(i+1) {
				t.Fatalf("cut %d: gap at %d (seq %d)", cut, i, r.Seq)
			}
			want := fmt.Sprintf("record-%02d-payload", i)
			if string(r.Payload) != want {
				t.Fatalf("cut %d: record %d = %q", cut, i, r.Payload)
			}
		}
	}
}
