// Package vfs abstracts the filesystem operations Sedna's durability layer
// performs (segment appends, fsync, atomic rename, directory fsync) behind
// an interface with two implementations: OS, a thin wrapper over the os
// package used in production, and Fault, an in-memory filesystem that
// models exactly what a power loss keeps — per-file synced prefixes and
// per-directory durable name bindings — and can inject fsync errors, short
// writes, ENOSPC and deterministic crash points. The WAL and snapshot code
// take a FS so the crash-injection harness can prove, for every crash
// point, that recovery loses no acknowledged write.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability layer uses.
type File interface {
	io.Writer
	// Sync forces written data to stable storage.
	Sync() error
	// Truncate changes the file size; the WAL uses it to erase a torn
	// record after a failed append.
	Truncate(size int64) error
	// Stat reports the file's current size.
	Stat() (os.FileInfo, error)
	Close() error
}

// FS is the filesystem surface of the durability layer. Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (the durability layer
	// only uses O_CREATE|O_WRONLY|O_APPEND and O_CREATE|O_WRONLY|O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole content of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile replaces name's content (create or truncate).
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks name.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists dir.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory itself, making the name bindings
	// (creates, renames, removes) inside it durable. Without it a crash
	// can forget that a file exists even though its data was fsynced.
	SyncDir(name string) error
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// SyncDir opens the directory and fsyncs it. On filesystems where
// directories cannot be fsynced the error is reported to the caller, which
// treats it like any other fsync failure.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
