package vfs

import (
	"errors"
	"os"
	"testing"
)

func mustWrite(t *testing.T, f File, data string) {
	t.Helper()
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs FS, name string) string {
	t.Helper()
	b, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestFaultCrashKeepsSyncedPrefixOnly(t *testing.T) {
	f := NewFault()
	if err := f.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	file, err := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, file, "durable")
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, file, "-lost")

	img := f.CrashFS()
	if got := readAll(t, img, "/d/a"); got != "durable" {
		t.Fatalf("crash image = %q, want synced prefix only", got)
	}
	// The live view still has everything.
	if got := readAll(t, f, "/d/a"); got != "durable-lost" {
		t.Fatalf("live view = %q", got)
	}
}

func TestFaultUnsyncedDirEntryVanishes(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/new", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	mustWrite(t, file, "x")
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	// Data fsynced but the directory entry was not: the file is gone.
	img := f.CrashFS()
	if _, err := img.ReadFile("/d/new"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced dir entry survived the crash: %v", err)
	}
	if err := f.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, f.CrashFS(), "/d/new"); got != "x" {
		t.Fatalf("after SyncDir crash image = %q", got)
	}
}

func TestFaultRenameDurability(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/snap.tmp", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	mustWrite(t, file, "snapshot")
	file.Sync()
	f.SyncDir("/d")
	if err := f.Rename("/d/snap.tmp", "/d/snap"); err != nil {
		t.Fatal(err)
	}

	// Without a dir fsync the crash reveals the OLD name.
	img := f.CrashFS()
	if _, err := img.ReadFile("/d/snap"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("un-fsynced rename is durable")
	}
	if got := readAll(t, img, "/d/snap.tmp"); got != "snapshot" {
		t.Fatalf("old name content = %q", got)
	}

	f.SyncDir("/d")
	img2 := f.CrashFS()
	if got := readAll(t, img2, "/d/snap"); got != "snapshot" {
		t.Fatalf("renamed content = %q", got)
	}
	if _, err := img2.ReadFile("/d/snap.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("old name survived a synced rename")
	}
}

func TestFaultRemoveNotDurableUntilSyncDir(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	mustWrite(t, file, "v")
	file.Sync()
	f.SyncDir("/d")
	if err := f.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, f.CrashFS(), "/d/a"); got != "v" {
		t.Fatalf("un-fsynced remove lost the file: %q", got)
	}
	f.SyncDir("/d")
	if _, err := f.CrashFS().ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("file survived a synced remove")
	}
}

func TestFaultStickyFsyncError(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	boom := errors.New("io error")
	f.FailFsyncAfter(1, boom)
	mustWrite(t, file, "1")
	if err := file.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	mustWrite(t, file, "2")
	if err := file.Sync(); !errors.Is(err, boom) {
		t.Fatalf("second sync = %v, want injected error", err)
	}
	// Sticky: later syncs fail too.
	if err := file.Sync(); !errors.Is(err, boom) {
		t.Fatalf("third sync = %v, want sticky error", err)
	}
	if err := f.SyncDir("/d"); !errors.Is(err, boom) {
		t.Fatalf("dir sync = %v, want sticky error", err)
	}
}

func TestFaultWriteBudgetTornWrite(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.FailWritesAfter(4, nil)
	n, err := file.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("torn write = (%d, %v)", n, err)
	}
	if got := readAll(t, f, "/d/a"); got != "abcd" {
		t.Fatalf("content after torn write = %q", got)
	}
	if n, err := file.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-budget write = (%d, %v)", n, err)
	}
}

func TestFaultCrashAfterOps(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	f.SetCrashAfterOps(2) // allow create + one write
	file, err := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("2")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third op = %v, want ErrCrashed", err)
	}
	if err := file.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
}

func TestFaultTruncateRestoresSize(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/d", 0o755)
	file, _ := f.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	mustWrite(t, file, "keep")
	file.Sync()
	mustWrite(t, file, "-torn")
	if err := file.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, f, "/d/a"); got != "keep" {
		t.Fatalf("after truncate = %q", got)
	}
	st, _ := file.Stat()
	if st.Size() != 4 {
		t.Fatalf("size = %d", st.Size())
	}
}

func TestFaultReadDir(t *testing.T) {
	f := NewFault()
	f.MkdirAll("/root/sub", 0o755)
	for _, name := range []string{"/root/b", "/root/a"} {
		file, _ := f.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		file.Close()
	}
	ents, err := f.ReadDir("/root")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "sub" {
		t.Fatalf("entries = %v", names)
	}
	if !ents[2].IsDir() {
		t.Fatal("sub not a dir")
	}
}

func TestOSSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir on a real dir: %v", err)
	}
	if err := OS.WriteFile(dir+"/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(dir + "/f")
	if err != nil || string(b) != "x" {
		t.Fatalf("round trip = %q, %v", b, err)
	}
}
