package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrCrashed is returned by every Fault operation after the injected crash
// point fires: the process is "dead", nothing else reaches the disk.
var ErrCrashed = errors.New("vfs: crashed")

// ErrNoSpace is the default error for an exhausted write budget (ENOSPC).
var ErrNoSpace = errors.New("vfs: no space left on device")

// inode is one file's content. data may run ahead of synced: a crash keeps
// only data[:synced].
type inode struct {
	data   []byte
	synced int
}

// dirState is one directory. entries is the live name→inode view; durable
// is the view as of the last SyncDir — what a crash keeps. Directories
// themselves are durable from creation (the durability code creates its
// directories once at startup; modelling directory-entry durability for
// the files inside them is what catches real bugs).
type dirState struct {
	entries map[string]*inode
	durable map[string]*inode
}

// Fault is an in-memory FS that models crash-durability precisely and can
// inject disk faults. All methods are safe for concurrent use.
//
// Durability model: File.Sync makes a file's current bytes durable;
// SyncDir makes a directory's current name bindings durable. CrashFS
// returns the filesystem a post-crash process would observe: durable
// bindings only, each file truncated to its synced prefix. This is the
// adversarial model — data that was written but not fsynced, and names
// that were created/renamed but whose directory was not fsynced, are gone.
type Fault struct {
	mu   sync.Mutex
	dirs map[string]*dirState

	// fault injection state
	crashed      bool
	crashAfter   int64 // remaining mutating ops before crash; <0 disabled
	fsyncErr     error // sticky fsync failure once armed
	fsyncErrIn   int64 // remaining successful fsyncs before fsyncErr arms; <0 disabled
	writeBudget  int64 // remaining write bytes before writeErr; <0 unlimited
	writeErr     error
	nWrites      int64
	nSyncs       int64
	nDirSyncs    int64
	nMutatingOps int64
}

// NewFault returns an empty fault-injection filesystem.
func NewFault() *Fault {
	return &Fault{dirs: map[string]*dirState{}, crashAfter: -1, fsyncErrIn: -1, writeBudget: -1}
}

// --- fault injection controls ---

// Crash makes every subsequent operation fail with ErrCrashed.
func (f *Fault) Crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// SetCrashAfterOps lets the next n mutating operations (writes, syncs,
// truncates, renames, removes, creates, dir syncs) succeed and crashes on
// the one after. n=0 crashes immediately.
func (f *Fault) SetCrashAfterOps(n int64) {
	f.mu.Lock()
	f.crashAfter = n
	f.mu.Unlock()
}

// FailFsync makes every subsequent fsync (file and directory) fail with
// err, stickily — matching real kernels, where a failed fsync may have
// dropped the dirty pages, so no later fsync can be trusted either.
func (f *Fault) FailFsync(err error) { f.FailFsyncAfter(0, err) }

// FailFsyncAfter lets the next n fsyncs succeed, then fails all later ones
// with err (sticky).
func (f *Fault) FailFsyncAfter(n int64, err error) {
	f.mu.Lock()
	f.fsyncErrIn = n
	f.fsyncErr = err
	f.mu.Unlock()
}

// FailWritesAfter grants a budget of n more written bytes; the write that
// would exceed it applies only the remaining budget (a short, torn write)
// and returns err. A nil err selects ErrNoSpace. Subsequent writes keep
// failing with a zero budget.
func (f *Fault) FailWritesAfter(n int64, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	f.mu.Lock()
	f.writeBudget = n
	f.writeErr = err
	f.mu.Unlock()
}

// MutatingOps reports how many mutating operations have completed; a crash
// harness enumerates crash points by replaying a workload with
// SetCrashAfterOps(k) for every k up to this count.
func (f *Fault) MutatingOps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nMutatingOps
}

// Syncs reports completed file fsyncs (group-commit batch accounting).
func (f *Fault) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nSyncs
}

// DirSyncs reports completed directory fsyncs.
func (f *Fault) DirSyncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nDirSyncs
}

// CrashFS returns a new filesystem holding exactly the durable state: for
// every directory, the name bindings as of its last SyncDir; for every
// surviving file, the bytes as of its last Sync. The returned FS has no
// faults armed — it is what the restarted process mounts.
func (f *Fault) CrashFS() *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := NewFault()
	for path, d := range f.dirs {
		nd := &dirState{entries: map[string]*inode{}, durable: map[string]*inode{}}
		for name, ino := range d.durable {
			cp := &inode{data: append([]byte(nil), ino.data[:ino.synced]...), synced: ino.synced}
			nd.entries[name] = cp
			nd.durable[name] = cp
		}
		out.dirs[path] = nd
	}
	return out
}

// --- internal helpers (all called with f.mu held) ---

// countOp gates one mutating operation against the crash point. It returns
// ErrCrashed when the filesystem is dead; otherwise it consumes one op.
func (f *Fault) countOp() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.crashAfter == 0 {
		f.crashed = true
		return ErrCrashed
	}
	if f.crashAfter > 0 {
		f.crashAfter--
	}
	f.nMutatingOps++
	return nil
}

func (f *Fault) fsyncGate() error {
	if f.fsyncErrIn == 0 {
		return f.fsyncErr
	}
	if f.fsyncErrIn > 0 {
		f.fsyncErrIn--
	}
	return nil
}

func (f *Fault) dir(path string) *dirState { return f.dirs[filepath.Clean(path)] }

func (f *Fault) lookup(name string) (*dirState, string, *inode) {
	name = filepath.Clean(name)
	d := f.dirs[filepath.Dir(name)]
	if d == nil {
		return nil, "", nil
	}
	base := filepath.Base(name)
	return d, base, d.entries[base]
}

func notExist(op, name string) error {
	return &os.PathError{Op: op, Path: name, Err: os.ErrNotExist}
}

// --- FS implementation ---

// MkdirAll creates path and its parents. Directory creation is not counted
// as a mutating op and is durable immediately (see dirState).
func (f *Fault) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	path = filepath.Clean(path)
	for {
		if f.dirs[path] == nil {
			f.dirs[path] = &dirState{entries: map[string]*inode{}, durable: map[string]*inode{}}
		}
		parent := filepath.Dir(path)
		if parent == path {
			return nil
		}
		path = parent
	}
}

// OpenFile supports the flag combinations the durability layer uses:
// O_CREATE with O_APPEND (WAL segments) or O_TRUNC (snapshot temps), and
// plain read opens are not needed (ReadFile covers them).
func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	d, base, ino := f.lookup(name)
	if d == nil {
		return nil, notExist("open", name)
	}
	switch {
	case ino == nil:
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		if err := f.countOp(); err != nil {
			return nil, err
		}
		ino = &inode{}
		d.entries[base] = ino
	case flag&os.O_TRUNC != 0:
		if err := f.countOp(); err != nil {
			return nil, err
		}
		// Truncate-and-rewrite replaces the inode so a durable binding
		// elsewhere (the pre-rename name) keeps the old content.
		ino = &inode{}
		d.entries[base] = ino
	}
	return &faultFile{fs: f, name: filepath.Clean(name), ino: ino}, nil
}

// ReadFile returns the live content of name.
func (f *Fault) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	_, _, ino := f.lookup(name)
	if ino == nil {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), ino.data...), nil
}

// WriteFile replaces name with data (a fresh, unsynced inode).
func (f *Fault) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.countOp(); err != nil {
		return err
	}
	d, base, _ := f.lookup(name)
	if d == nil {
		return notExist("open", name)
	}
	n, err := f.chargeWrite(int64(len(data)))
	d.entries[base] = &inode{data: append([]byte(nil), data[:n]...)}
	return err
}

// chargeWrite debits the write budget and returns how many of n bytes land.
func (f *Fault) chargeWrite(n int64) (int64, error) {
	f.nWrites++
	if f.writeBudget < 0 {
		return n, nil
	}
	if n <= f.writeBudget {
		f.writeBudget -= n
		return n, nil
	}
	kept := f.writeBudget
	f.writeBudget = 0
	return kept, f.writeErr
}

// Rename moves the live binding; neither the disappearance of oldpath nor
// the appearance of newpath is durable until the respective SyncDir.
func (f *Fault) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.countOp(); err != nil {
		return err
	}
	od, obase, ino := f.lookup(oldpath)
	if ino == nil {
		return notExist("rename", oldpath)
	}
	nd, nbase, _ := f.lookup(newpath)
	if nd == nil {
		return notExist("rename", newpath)
	}
	delete(od.entries, obase)
	nd.entries[nbase] = ino
	return nil
}

// Remove unlinks the live binding.
func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.countOp(); err != nil {
		return err
	}
	d, base, ino := f.lookup(name)
	if ino == nil {
		return notExist("remove", name)
	}
	delete(d.entries, base)
	return nil
}

// ReadDir lists the live entries of name (files then subdirectories).
func (f *Fault) ReadDir(name string) ([]os.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	d := f.dirs[name]
	if d == nil {
		return nil, notExist("open", name)
	}
	var out []os.DirEntry
	for base, ino := range d.entries {
		out = append(out, faultDirEntry{name: base, size: int64(len(ino.data))})
	}
	for sub := range f.dirs {
		if filepath.Dir(sub) == name && sub != name {
			out = append(out, faultDirEntry{name: filepath.Base(sub), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// SyncDir makes name's current bindings durable.
func (f *Fault) SyncDir(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.countOp(); err != nil {
		return err
	}
	if err := f.fsyncGate(); err != nil {
		return err
	}
	d := f.dir(name)
	if d == nil {
		return notExist("sync", name)
	}
	d.durable = make(map[string]*inode, len(d.entries))
	for base, ino := range d.entries {
		d.durable[base] = ino
	}
	f.nDirSyncs++
	return nil
}

// --- file handle ---

type faultFile struct {
	fs     *Fault
	name   string
	ino    *inode
	closed bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return 0, os.ErrClosed
	}
	if err := ff.fs.countOp(); err != nil {
		return 0, err
	}
	n, err := ff.fs.chargeWrite(int64(len(p)))
	ff.ino.data = append(ff.ino.data, p[:n]...)
	if err != nil {
		return int(n), err
	}
	return int(n), nil
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return os.ErrClosed
	}
	if err := ff.fs.countOp(); err != nil {
		return err
	}
	if err := ff.fs.fsyncGate(); err != nil {
		return err
	}
	ff.ino.synced = len(ff.ino.data)
	ff.fs.nSyncs++
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return os.ErrClosed
	}
	if err := ff.fs.countOp(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(ff.ino.data)) {
		return fmt.Errorf("vfs: truncate %s to %d (size %d)", ff.name, size, len(ff.ino.data))
	}
	ff.ino.data = ff.ino.data[:size]
	if ff.ino.synced > int(size) {
		ff.ino.synced = int(size)
	}
	return nil
}

func (ff *faultFile) Stat() (os.FileInfo, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return nil, os.ErrClosed
	}
	return faultFileInfo{name: filepath.Base(ff.name), size: int64(len(ff.ino.data))}, nil
}

// Close releases the handle. Closing is not a durability point.
func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return os.ErrClosed
	}
	ff.closed = true
	return nil
}

// --- os.FileInfo / os.DirEntry adapters ---

type faultFileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi faultFileInfo) Name() string { return fi.name }
func (fi faultFileInfo) Size() int64  { return fi.size }
func (fi faultFileInfo) Mode() os.FileMode {
	if fi.dir {
		return os.ModeDir | 0o755
	}
	return 0o644
}
func (fi faultFileInfo) ModTime() time.Time { return time.Time{} }
func (fi faultFileInfo) IsDir() bool        { return fi.dir }
func (fi faultFileInfo) Sys() any           { return nil }

type faultDirEntry struct {
	name string
	size int64
	dir  bool
}

func (de faultDirEntry) Name() string { return de.name }
func (de faultDirEntry) IsDir() bool  { return de.dir }
func (de faultDirEntry) Type() fs.FileMode {
	if de.dir {
		return fs.ModeDir
	}
	return 0
}
func (de faultDirEntry) Info() (fs.FileInfo, error) {
	return faultFileInfo{name: de.name, size: de.size, dir: de.dir}, nil
}
