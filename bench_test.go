// Package-level benchmarks: one testing.B target per artifact of the
// paper's evaluation (§VI), so `go test -bench=.` regenerates per-operation
// versions of every figure, and cmd/sedna-bench produces the full sweeps.
//
//	Fig. 7(a) — BenchmarkFig7a_* : Sedna vs memcached writing each key to
//	            three servers sequentially.
//	Fig. 7(b) — BenchmarkFig7b_* : Sedna vs memcached writing once.
//	Fig. 8    — BenchmarkFig8_*  : one client vs nine concurrent clients.
//	E4/E5     — BenchmarkAblation_* and BenchmarkCoord_*.
package sedna_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/client"
	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/memcached"
	"sedna/internal/netsim"
	"sedna/internal/quorum"
	"sedna/internal/workload"
)

// benchCluster lazily boots one shared 9-node Sedna cluster for the figure
// benchmarks (booting per-benchmark would dominate the measurements).
var (
	clusterOnce sync.Once
	benchC      *bench.Cluster
	benchErr    error
)

func sharedCluster(b *testing.B) *bench.Cluster {
	b.Helper()
	clusterOnce.Do(func() {
		benchC, benchErr = bench.NewCluster(bench.ClusterConfig{
			Nodes:       9,
			Profile:     netsim.GigabitLAN(),
			Seed:        42,
			MemoryLimit: 256 << 20,
		})
		if benchErr == nil {
			benchErr = benchC.WaitConverged(9, 30*time.Second)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchC
}

func sednaClient(b *testing.B, c *bench.Cluster) *client.Client {
	b.Helper()
	cl, err := c.Client()
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

var benchTable atomic.Uint64

func freshGen(keys int) *workload.Generator {
	return workload.NewGenerator(workload.Spec{
		Keys:    keys,
		Dataset: "bench",
		Table:   fmt.Sprintf("bt%d", benchTable.Add(1)),
	})
}

// --- memcached side, shared per replica count ---

var (
	mcOnce    sync.Once
	mcNet     *netsim.Network
	mcAddrs   []string
	mcSetup   error
	mcServers []*memcached.Server
)

func mcCluster(b *testing.B) ([]string, *netsim.Network) {
	b.Helper()
	mcOnce.Do(func() {
		mcNet = netsim.NewNetwork(netsim.GigabitLAN(), 43)
		for i := 0; i < 9; i++ {
			addr := fmt.Sprintf("mcb-%d", i)
			srv := memcached.NewServer(mcNet.Endpoint(addr), 256<<20)
			if err := srv.Start(); err != nil {
				mcSetup = err
				return
			}
			mcServers = append(mcServers, srv)
			mcAddrs = append(mcAddrs, addr)
		}
	})
	if mcSetup != nil {
		b.Fatal(mcSetup)
	}
	return mcAddrs, mcNet
}

func mcClient(b *testing.B, replicas int) *memcached.Client {
	b.Helper()
	addrs, net := mcCluster(b)
	cl, err := memcached.NewClient(memcached.ClientConfig{
		Servers:  addrs,
		Caller:   net.Endpoint(fmt.Sprintf("mc-cli-%d", benchTable.Add(1))),
		Replicas: replicas,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// --- Fig. 7(a): Sedna (parallel 3-replica quorum) vs memcached x3 ---

func BenchmarkFig7a_SednaWrite(b *testing.B) {
	cl := sednaClient(b, sharedCluster(b))
	gen := freshGen(b.N)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			// ErrOutdated is the paper's legitimate "a newer timestamp
			// won" reply (a raced zombie retry), not a failure.
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_SednaRead(b *testing.B) {
	cl := sednaClient(b, sharedCluster(b))
	gen := freshGen(1000)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if err := cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			// ErrOutdated is the paper's legitimate "a newer timestamp
			// won" reply (a raced zombie retry), not a failure.
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.ReadLatest(ctx, gen.Key(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_Memcached3Write(b *testing.B) {
	cl := mcClient(b, 3)
	gen := freshGen(b.N)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set(ctx, string(gen.Key(i)), gen.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_Memcached3Read(b *testing.B) {
	cl := mcClient(b, 3)
	gen := freshGen(1000)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if err := cl.Set(ctx, string(gen.Key(i)), gen.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Get(ctx, string(gen.Key(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7(b): memcached writing once ---

func BenchmarkFig7b_Memcached1Write(b *testing.B) {
	cl := mcClient(b, 1)
	gen := freshGen(b.N)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Set(ctx, string(gen.Key(i)), gen.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7b_Memcached1Read(b *testing.B) {
	cl := mcClient(b, 1)
	gen := freshGen(1000)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if err := cl.Set(ctx, string(gen.Key(i)), gen.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Get(ctx, string(gen.Key(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 8: one client vs nine concurrent clients ---

func BenchmarkFig8_OneClientWrite(b *testing.B) {
	cl := sednaClient(b, sharedCluster(b))
	gen := freshGen(b.N)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			// ErrOutdated is the paper's legitimate "a newer timestamp
			// won" reply (a raced zombie retry), not a failure.
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_NineClientsWrite(b *testing.B) {
	c := sharedCluster(b)
	const nClients = 9
	clients := make([]*client.Client, nClients)
	gens := make([]*workload.Generator, nClients)
	for i := range clients {
		clients[i] = sednaClient(b, c)
		gens[i] = freshGen(1 << 20)
	}
	ctx := context.Background()
	var next atomic.Uint64
	b.ResetTimer()
	// Aggregate throughput: b.N operations split across nine concurrent
	// clients, the multi-client row of Fig. 8.
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > uint64(b.N) {
					return
				}
				if err := clients[ci].WriteLatest(ctx, gens[ci].Key(int(i)), gens[ci].Value(int(i))); err != nil && !errors.Is(err, core.ErrOutdated) {
					errCh <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
}

func BenchmarkFig8_NineClientsRead(b *testing.B) {
	c := sharedCluster(b)
	const nClients = 9
	gen := freshGen(1000)
	seedCl := sednaClient(b, c)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if err := seedCl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			b.Fatal(err)
		}
	}
	clients := make([]*client.Client, nClients)
	for i := range clients {
		clients[i] = sednaClient(b, c)
	}
	var next atomic.Uint64
	b.ResetTimer()
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for ci := 0; ci < nClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > uint64(b.N) {
					return
				}
				if _, _, err := clients[ci].ReadLatest(ctx, gen.Key(int(i)%1000)); err != nil {
					errCh <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
}

// --- E4: quorum ablation (write path under different N/R/W) ---

func benchQuorumConfig(b *testing.B, qc quorum.Config) {
	c, err := bench.NewCluster(bench.ClusterConfig{
		Nodes:       5,
		Quorum:      qc,
		Profile:     netsim.GigabitLAN(),
		Seed:        77,
		MemoryLimit: 128 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	cl, err := c.Client()
	if err != nil {
		b.Fatal(err)
	}
	gen := freshGen(b.N)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			// ErrOutdated is the paper's legitimate "a newer timestamp
			// won" reply (a raced zombie retry), not a failure.
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_QuorumN1R1W1(b *testing.B) {
	benchQuorumConfig(b, quorum.Config{N: 1, R: 1, W: 1, Timeout: 2 * time.Second})
}

func BenchmarkAblation_QuorumN3R2W2(b *testing.B) {
	benchQuorumConfig(b, quorum.Config{N: 3, R: 2, W: 2, Timeout: 2 * time.Second})
}

func BenchmarkAblation_QuorumN3R1W3(b *testing.B) {
	benchQuorumConfig(b, quorum.Config{N: 3, R: 1, W: 3, Timeout: 2 * time.Second})
}

// --- E5: coordination reads, direct vs lease cache ---

var (
	coordOnce   sync.Once
	coordSrvs   []*coord.Server
	coordNet    *netsim.Network
	coordSetup  error
	coordDirect *coord.Client
	coordCached *coord.CachedClient
)

func coordPair(b *testing.B) (*coord.Client, *coord.CachedClient) {
	b.Helper()
	coordOnce.Do(func() {
		coordNet = netsim.NewNetwork(netsim.GigabitLAN(), 5)
		addrs := []string{"cb-0", "cb-1", "cb-2"}
		for i := range addrs {
			s := coord.NewServer(coord.ServerConfig{
				ID: i, Members: addrs, Transport: coordNet.Endpoint(addrs[i]),
				HeartbeatEvery: 20 * time.Millisecond, ElectionTimeout: 120 * time.Millisecond,
				RPCTimeout: 80 * time.Millisecond,
			})
			if err := s.Start(); err != nil {
				coordSetup = err
				return
			}
			coordSrvs = append(coordSrvs, s)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			ok := false
			for _, s := range coordSrvs {
				if s.IsLeader() {
					ok = true
				}
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				coordSetup = fmt.Errorf("no leader")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		coordDirect, coordSetup = coord.Dial(coord.ClientConfig{
			Servers: addrs, Caller: coordNet.Endpoint("cb-cli"), NoSession: true,
		})
		if coordSetup != nil {
			return
		}
		if _, err := coordDirect.Create("/bench-ring", []byte("ring-blob"), coord.CreateOpts{}); err != nil {
			coordSetup = err
			return
		}
		coordCached, coordSetup = coord.NewCachedClient(coordDirect, coord.CacheConfig{})
	})
	if coordSetup != nil {
		b.Fatal(coordSetup)
	}
	return coordDirect, coordCached
}

func BenchmarkCoord_DirectRead(b *testing.B) {
	cli, _ := coordPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cli.Get("/bench-ring"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoord_CachedRead(b *testing.B) {
	_, cached := coordPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cached.Get("/bench-ring"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro: the local write path without any network ---

func BenchmarkLocal_RowApplyEncode(b *testing.B) {
	row := &kv.Row{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row.ApplyLatest(kv.Versioned{
			Value:  []byte("20-byte-value-xxxxxx"),
			TS:     kv.Timestamp{Wall: int64(i + 1)},
			Source: "bench",
		})
		blob := kv.EncodeRow(row)
		if _, err := kv.DecodeRow(blob); err != nil {
			b.Fatal(err)
		}
	}
}
